"""Communication analysis: classify references at compile time, suggest maps.

The run-time classifier (:mod:`repro.mapping.locality`) is exact; this
pass is its static counterpart, used for reporting and for suggesting map
sections: it walks every parallel construct, canonicalises each array
subscript to ``elem ± const`` where possible, and predicts the
communication tier under the active layouts.  References it cannot
canonicalise (data-dependent subscripts) are reported as router traffic.

For each non-local reference the pass emits a concrete suggestion:

* constant-offset shifts → a ``permute`` with the matching offset;
* transposed element orders → a transposing ``permute``;
* values constant along a construct axis → a ``copy`` along that axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..lang import ast
from ..lang.errors import UCSemanticError
from ..lang.semantics import ProgramInfo
from ..mapping.layout import LayoutTable
from ..mapping.maps import AffineSub, affine_subscript


@dataclass(frozen=True)
class RefReport:
    """Verdict for one source reference."""

    text: str
    array: str
    kind: str  # local | news | spread | broadcast | router
    note: str = ""
    line: int = 0


@dataclass
class CommReport:
    references: List[RefReport] = field(default_factory=list)
    suggestions: List[str] = field(default_factory=list)

    def count(self, kind: str) -> int:
        return sum(1 for r in self.references if r.kind == kind)

    @property
    def remote_count(self) -> int:
        return sum(1 for r in self.references if r.kind != "local")


def analyze_communication(info: ProgramInfo, layouts: LayoutTable) -> CommReport:
    """Classify every array reference inside parallel constructs."""
    report = CommReport()
    roots: List[ast.Node] = []
    if info.program.main is not None:
        roots.append(info.program.main)
    roots.extend(f.body for f in info.program.funcs)
    for root in roots:
        _walk(root, [], {}, info, layouts, report)
    _dedupe_suggestions(report)
    return report


def _walk(
    node: ast.Node,
    elem_stack: List[Tuple[str, str]],  # (elem, set) in axis order
    scalar_elems: Dict[str, str],  # seq-bound elements: scalars at run time
    info: ProgramInfo,
    layouts: LayoutTable,
    report: CommReport,
) -> None:
    if isinstance(node, ast.UCStmt) and node.kind == "seq":
        # a seq element is an ordinary scalar at run time: references
        # subscripted by it are uniform across the grid, exactly as the
        # runtime classifier sees them on each iteration
        scalars = dict(scalar_elems)
        trimmed = list(elem_stack)
        for set_name in node.index_sets:
            isv = info.index_sets.get(set_name)
            if isv is not None:
                trimmed = [e for e in trimmed if e[0] != isv.elem_name]
                scalars[isv.elem_name] = set_name
        for child in ast.children(node):
            _walk(child, trimmed, scalars, info, layouts, report)
        return
    if (isinstance(node, ast.UCStmt) and node.kind in ("par", "solve", "oneof")) or isinstance(
        node, ast.Reduction
    ):
        extended = list(elem_stack)
        scalars = scalar_elems
        for set_name in node.index_sets:
            isv = info.index_sets.get(set_name)
            if isv is not None:
                extended = [e for e in extended if e[0] != isv.elem_name]
                extended.append((isv.elem_name, set_name))
                if isv.elem_name in scalars:
                    scalars = {
                        k: v for k, v in scalars.items() if k != isv.elem_name
                    }
        for child in ast.children(node):
            _walk(child, extended, scalars, info, layouts, report)
        return
    if isinstance(node, ast.Index) and elem_stack and node.base in info.arrays:
        report.references.append(
            _classify_static(node, elem_stack, scalar_elems, info, layouts, report)
        )
    for child in ast.children(node):
        _walk(child, elem_stack, scalar_elems, info, layouts, report)


def _classify_static(
    node: ast.Index,
    elem_stack: Sequence[Tuple[str, str]],
    scalar_elems: Dict[str, str],
    info: ProgramInfo,
    layouts: LayoutTable,
    report: CommReport,
) -> RefReport:
    from .cstar_gen import expr_to_text

    text = expr_to_text(node)
    elems = {e: s for e, s in elem_stack}
    elems.update(scalar_elems)
    elem_axis = {e: k for k, (e, _s) in enumerate(elem_stack)}
    layout = layouts.get(node.base) if node.base in layouts else None

    subs: List[Optional[AffineSub]] = []
    for sub in node.subs:
        try:
            s = affine_subscript(sub, elems, info.constants)
        except UCSemanticError:
            subs.append(None)
            continue
        if s.elem is not None and s.elem in scalar_elems:
            # seq-bound: a run-time scalar, hence uniform per iteration
            s = AffineSub(None, 0, 0)
        subs.append(s)

    if any(s is None for s in subs):
        return RefReport(
            text, node.base, "router", "data-dependent subscript", node.line
        )

    perm = (
        layout.axis_perm if layout is not None and layout.axis_perm else None
    )
    offsets = layout.offsets if layout is not None else (0,) * len(subs)
    used_elems: List[Optional[str]] = []
    total_shift = 0
    transposed = False
    for a, s in enumerate(subs):
        assert s is not None
        if s.elem is None:
            used_elems.append(None)
            continue
        used_elems.append(s.elem)
        if s.scale != 1:
            transposed = True  # mirrored: router unless a fold absorbs it
            continue
        eff = s.offset + (offsets[a] if a < len(offsets) else 0)
        if layout is not None and layout.fold is not None and layout.fold.axis == a:
            if layout.fold.kind == "wrap" and s.offset == layout.fold.param:
                eff = offsets[a] if a < len(offsets) else 0
        expected_axis = perm.index(a) if perm is not None else a
        axis_here = elem_axis.get(s.elem, -1)
        # relative order among construct axes must match array axis order
        want = _nth_axis(elem_stack, expected_axis, subs)
        if want is not None and s.elem != want:
            transposed = True
        total_shift += abs(eff)

    uniform_axes = [a for a, e in enumerate(used_elems) if e is None]
    unused = [
        e
        for e, _s in elem_stack
        if e not in {u for u in used_elems if u is not None}
    ]
    if layout is not None and layout.copy_elem is not None:
        unused = [e for e in unused if e != layout.copy_elem]

    if transposed:
        report.suggestions.append(
            f"permute {node.base!r} so that {text} is stored locally "
            f"(transposed element order)"
        )
        return RefReport(text, node.base, "router", "transposed element order", node.line)
    if not any(e is not None for e in used_elems):
        return RefReport(text, node.base, "broadcast", "uniform across the grid", node.line)
    if unused or uniform_axes:
        which = ", ".join(unused) if unused else "a fixed row/column"
        report.suggestions.append(
            f"copy {node.base!r} along {which} to avoid spreading {text}"
        )
        return RefReport(
            text, node.base, "spread", f"constant along {which}", node.line
        )
    if total_shift > 0:
        report.suggestions.append(
            f"permute {node.base!r} with offset {total_shift} so that {text} "
            "is stored locally"
        )
        return RefReport(
            text, node.base, "news", f"constant shift of {total_shift}", node.line
        )
    return RefReport(text, node.base, "local", "", node.line)


def _nth_axis(
    elem_stack: Sequence[Tuple[str, str]],
    expected: int,
    subs: Sequence[Optional[AffineSub]],
) -> Optional[str]:
    """Which construct element 'should' sit on array axis ``expected``
    under the canonical alignment: the elements used by this reference, in
    construct-axis order, assigned to array axes left to right."""
    order = [e for e, _s in elem_stack if any(s is not None and s.elem == e for s in subs)]
    if expected < len(order):
        return order[expected]
    return None


def _dedupe_suggestions(report: CommReport) -> None:
    seen: Set[str] = set()
    out: List[str] = []
    for s in report.suggestions:
        if s not in seen:
            seen.add(s)
            out.append(s)
    report.suggestions = out
