"""Communication analysis: classify references at compile time, suggest maps.

This pass is now a thin reporting layer over the whole-program analyzer
(:mod:`repro.analysis`): each reference inside a parallel construct is
realised symbolically (:mod:`repro.analysis.staticref`), classified by
the *same* affine classifier both engines use at run time
(:func:`repro.mapping.locality.classify_affine`) and assigned its tier
by the same dispatcher (:func:`repro.interp.commtiers.decide_tier`).
Compile-time reports, ``repro lint``'s UC3xx diagnostics and the runtime
tier log therefore agree decision-for-decision.

For each non-local reference the pass emits a concrete suggestion:

* constant-offset shifts → a ``permute`` with the matching offset;
* transposed element orders → a transposing ``permute``;
* values constant along a construct axis → a ``copy`` along that axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..interp.commtiers import decide_tier
from ..lang.semantics import ProgramInfo
from ..machine.config import CostTable
from ..mapping.layout import LayoutTable


@dataclass(frozen=True)
class RefReport:
    """Verdict for one source reference."""

    text: str
    array: str
    kind: str  # local | news | spread | broadcast | permute | router
    note: str = ""
    line: int = 0


@dataclass
class CommReport:
    references: List[RefReport] = field(default_factory=list)
    suggestions: List[str] = field(default_factory=list)

    def count(self, kind: str) -> int:
        return sum(1 for r in self.references if r.kind == kind)

    @property
    def remote_count(self) -> int:
        return sum(1 for r in self.references if r.kind != "local")


def analyze_communication(
    info: ProgramInfo, layouts: LayoutTable, costs: Optional[CostTable] = None
) -> CommReport:
    """Classify every array reference inside parallel constructs."""
    from ..analysis.linter import build_verdicts
    from ..analysis.staticref import A, default_costs
    from .cstar_gen import expr_to_text

    table = costs if costs is not None else default_costs()
    report = CommReport()
    _model, verdicts = build_verdicts(info, layouts)
    for v in verdicts:
        node = v.ref.node
        text = expr_to_text(node)
        rc = v.rc_write if (v.ref.write and not v.ref.read) else v.rc
        if rc is None:
            continue  # rank mismatch: the semantic analyzer reports it
        tier = decide_tier(rc, table, write=v.ref.write and not v.ref.read)
        note = rc.detail
        if tier == "local":
            note = ""
        elif rc.axes is None:
            note = "data-dependent subscript"
        elif "permutes the grid alignment" in rc.detail:
            note = "transposed element order"
            report.suggestions.append(
                f"permute {node.base!r} so that {text} is stored locally "
                f"(transposed element order)"
            )
        elif tier == "spread":
            layout = (
                _model.layouts.get(node.base) if node.base in _model.layouts else None
            )
            copy_elem = layout.copy_elem if layout is not None else None
            used = {s.g for s in v.subvals if s.kind == A}
            unused = [
                axis.elem
                for g, axis in enumerate(v.ref.axes)
                if g not in used and axis.elem != copy_elem
            ]
            which = ", ".join(unused) if unused else "a fixed row/column"
            note = f"constant along {which}"
            report.suggestions.append(
                f"copy {node.base!r} along {which} to avoid spreading {text}"
            )
        elif tier == "news":
            note = f"constant shift of {rc.news_distance}"
            report.suggestions.append(
                f"permute {node.base!r} with offset {rc.news_distance} "
                f"so that {text} is stored locally"
            )
        report.references.append(RefReport(text, node.base, tier, note, node.line))
    _dedupe_suggestions(report)
    return report


def _dedupe_suggestions(report: CommReport) -> None:
    seen: Set[str] = set()
    out: List[str] = []
    for s in report.suggestions:
        if s not in seen:
            seen.add(s)
            out.append(s)
    report.suggestions = out
