"""UC → C* translation: the backend of the paper's prototype compiler.

"The UC compiler generates C* target code which can then be compiled and
executed using the C* compiler."  This module reproduces that stage as a
source-to-source translator whose output matches the *style* of the
paper's appendix listings (figures 9 and 10):

* arrays referenced in parallel constructs are grouped by shape into
  domains, with ``i``/``j``/``k`` coordinate fields and an address-
  arithmetic ``init()`` member;
* ``par`` becomes a domain activation with ``where`` selection;
* ``seq`` becomes a front-end ``for`` loop;
* min/max reductions over an index set become the paper's
  ``for (k...) x <?= e;`` pattern (``+`` reductions use ``+=``);
* ``*par`` becomes a global-or-driven ``while``;
* map sections are compiled away first by rewriting subscripts (C* has no
  mapping concept — which is exactly the contrast the paper draws).

The output is C* source *text*; it is validated structurally by tests
(domain shapes, where-clauses, ``<?=`` patterns), not executed — the
executable C* baseline lives in :mod:`repro.cstar`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..lang import ast
from ..lang.semantics import ProgramInfo
from ..mapping.layout import LayoutTable
from ..mapping.transform import rewrite_program
from .cstar_ast import CStarDomain, CStarField, CStarProgram

#: C binary operator precedence for minimal parenthesisation
_PREC = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}


def expr_to_text(expr: ast.Expr, parent_prec: int = 0) -> str:
    """Render a UC expression as C text (used by reports and codegen)."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.FloatLit):
        return repr(expr.value)
    if isinstance(expr, ast.StringLit):
        return '"' + expr.value.replace("\\", "\\\\").replace('"', '\\"') + '"'
    if isinstance(expr, ast.InfLit):
        return "INF"
    if isinstance(expr, ast.Name):
        return expr.ident
    if isinstance(expr, ast.Index):
        return expr.base + "".join(f"[{expr_to_text(s)}]" for s in expr.subs)
    if isinstance(expr, ast.Unary):
        inner = expr_to_text(expr.operand, 11)
        if inner.startswith(expr.op):
            # avoid '--x' (decrement) when negating a negation
            inner = f"({inner})"
        return f"{expr.op}{inner}"
    if isinstance(expr, ast.Binary):
        prec = _PREC.get(expr.op, 0)
        text = (
            f"{expr_to_text(expr.left, prec)} {expr.op} "
            f"{expr_to_text(expr.right, prec + 1)}"
        )
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, ast.Ternary):
        text = (
            f"{expr_to_text(expr.cond, 1)} ? {expr_to_text(expr.then)} : "
            f"{expr_to_text(expr.els)}"
        )
        return f"({text})" if parent_prec > 0 else text
    if isinstance(expr, ast.Call):
        return f"{expr.func}({', '.join(expr_to_text(a) for a in expr.args)})"
    if isinstance(expr, ast.Assign):
        op = expr.op + "=" if expr.op else "="
        return f"{expr_to_text(expr.target)} {op} {expr_to_text(expr.value)}"
    if isinstance(expr, ast.IncDec):
        return f"{expr_to_text(expr.target)}{expr.op}"
    if isinstance(expr, ast.Reduction):
        arms = "; ".join(
            (f"st ({expr_to_text(a.pred)}) " if a.pred else "")
            + expr_to_text(a.expr)
            for a in expr.arms
        )
        return f"$[{expr.op}]({', '.join(expr.index_sets)}; {arms})"
    return f"/* {type(expr).__name__} */"


class CStarGenerator:
    """Translates one checked UC program to a :class:`CStarProgram`."""

    _RED_STMT_OP = {"min": "<?=", "max": ">?=", "add": "+=", "mul": "*="}

    def __init__(self, info: ProgramInfo, layouts: Optional[LayoutTable] = None) -> None:
        self.info = info
        program = info.program
        if layouts is not None and layouts.non_canonical():
            program = rewrite_program(program, layouts)
        self.program = program
        self.out = CStarProgram()
        self._tmp_counter = 0

    # -- driving ------------------------------------------------------------

    def generate(self) -> CStarProgram:
        self._build_domains()
        self._host_decls()
        if self.program.main is not None:
            self._emit_block(self.program.main, indent=0)
        return self.out

    def render(self) -> str:
        return self.generate().render()

    # -- domains ----------------------------------------------------------------

    def _build_domains(self) -> None:
        by_shape: Dict[Tuple[int, ...], List[Tuple[str, str]]] = {}
        for name, (ctype, dims) in self.info.arrays.items():
            by_shape.setdefault(dims, []).append((name, ctype))
        coord_names = ("i", "j", "k", "l")
        for idx, (shape, members) in enumerate(sorted(by_shape.items())):
            dname = f"GRID{idx}_" + "x".join(map(str, shape))
            fields = [CStarField(coord_names[a]) for a in range(min(len(shape), 4))]
            fields += [CStarField(n, t) for n, t in members]
            self.out.domains.append(
                CStarDomain(dname, f"g{idx}", shape, fields)
            )
        if len(by_shape) > 1:
            self.out.notes.append(
                "C* ties parallelism to data declarations: one domain per "
                "array shape (UC derived these layouts automatically)"
            )

    def _domain_of(self, array: str) -> CStarDomain:
        dims = self.info.arrays[array][1]
        return self.out.domain_for_shape(dims)

    def _host_decls(self) -> None:
        for name, ctype in self.info.scalars.items():
            init = ""
            if name in self.info.constants:
                init = f" = {self.info.constants[name]}"
            self.out.host_decls.append(f"{ctype} {name}{init};")

    # -- statements ---------------------------------------------------------------

    def _emit(self, line: str, indent: int) -> None:
        self.out.main_lines.append("    " * indent + line)

    def _emit_block(self, block: ast.Block, indent: int) -> None:
        for stmt in block.stmts:
            self._emit_stmt(stmt, indent)

    def _emit_stmt(self, stmt: ast.Stmt, indent: int) -> None:
        if isinstance(stmt, ast.Block):
            self._emit("{", indent)
            self._emit_block(stmt, indent + 1)
            self._emit("}", indent)
        elif isinstance(stmt, ast.ExprStmt):
            self._emit(self._expr_in_domain(stmt.expr) + ";", indent)
        elif isinstance(stmt, ast.VarDecl):
            dims = "".join(f"[{expr_to_text(d)}]" for d in stmt.dims)
            init = f" = {expr_to_text(stmt.init)}" if stmt.init else ""
            self._emit(f"{stmt.ctype} {stmt.name}{dims}{init};", indent)
        elif isinstance(stmt, ast.IndexSetDecl):
            self._emit(f"/* index_set {stmt.set_name}:{stmt.elem_name} */", indent)
        elif isinstance(stmt, ast.UCStmt):
            self._emit_uc(stmt, indent)
        elif isinstance(stmt, ast.If):
            self._emit(f"if ({expr_to_text(stmt.cond)})", indent)
            self._emit_stmt(stmt.then, indent + 1)
            if stmt.els is not None:
                self._emit("else", indent)
                self._emit_stmt(stmt.els, indent + 1)
        elif isinstance(stmt, ast.While):
            self._emit(f"while ({expr_to_text(stmt.cond)})", indent)
            self._emit_stmt(stmt.body, indent + 1)
        elif isinstance(stmt, ast.For):
            init = expr_to_text(stmt.init) if stmt.init else ""
            cond = expr_to_text(stmt.cond) if stmt.cond else ""
            step = expr_to_text(stmt.step) if stmt.step else ""
            self._emit(f"for ({init}; {cond}; {step})", indent)
            self._emit_stmt(stmt.body, indent + 1)
        elif isinstance(stmt, ast.Return):
            self._emit(
                "return" + (f" {expr_to_text(stmt.value)}" if stmt.value else "") + ";",
                indent,
            )
        elif isinstance(stmt, (ast.EmptyStmt, ast.Break, ast.Continue)):
            self._emit(";", indent)
        else:  # pragma: no cover
            self._emit(f"/* {type(stmt).__name__} */", indent)

    # -- UC constructs ---------------------------------------------------------------

    def _emit_uc(self, stmt: ast.UCStmt, indent: int) -> None:
        if stmt.kind == "seq":
            self._emit_seq(stmt, indent)
            return
        domain = self._construct_domain(stmt)
        header = f"[domain {domain.name}].{{" if domain else "{"
        if stmt.star:
            self._emit(
                f"while (/* global-or of the {stmt.kind} predicates */ 1) "
                + header,
                indent,
            )
        else:
            self._emit(header, indent)
        if stmt.kind == "solve":
            self._emit(
                "/* solve: assignments executed in dependency order "
                "(compiler-scheduled) */",
                indent + 1,
            )
        for block in stmt.blocks:
            if block.pred is not None:
                self._emit(f"where ({self._expr_in_domain(block.pred)}) {{", indent + 1)
                self._emit_stmt(block.stmt, indent + 2)
                self._emit("}", indent + 1)
            else:
                self._emit_stmt(block.stmt, indent + 1)
        if stmt.others is not None:
            preds = " || ".join(
                f"({self._expr_in_domain(b.pred)})" for b in stmt.blocks if b.pred
            )
            self._emit(f"where (!({preds})) {{", indent + 1)
            self._emit_stmt(stmt.others, indent + 2)
            self._emit("}", indent + 1)
        self._emit("}", indent)

    def _emit_seq(self, stmt: ast.UCStmt, indent: int) -> None:
        for set_name in stmt.index_sets:
            isv = self.info.index_sets[set_name]
            lo, hi = min(isv.values), max(isv.values)
            self._emit(
                f"for ({isv.elem_name} = {lo}; {isv.elem_name} <= {hi}; "
                f"{isv.elem_name}++) {{",
                indent,
            )
            indent += 1
        for block in stmt.blocks:
            if block.pred is not None:
                self._emit(f"if ({self._expr_in_domain(block.pred)})", indent)
                self._emit_stmt(block.stmt, indent + 1)
            else:
                self._emit_stmt(block.stmt, indent)
        for _ in stmt.index_sets:
            indent -= 1
            self._emit("}", indent)

    def _construct_domain(self, stmt: ast.UCStmt) -> Optional[CStarDomain]:
        """The domain whose shape matches the construct's product grid."""
        shape = tuple(
            len(self.info.index_sets[name]) for name in stmt.index_sets
            if name in self.info.index_sets
        )
        try:
            return self.out.domain_for_shape(shape)
        except KeyError:
            return None

    # -- expressions -------------------------------------------------------------------

    def _expr_in_domain(self, expr: ast.Expr) -> str:
        """Render an expression with reductions lowered to C* loops."""
        if isinstance(expr, ast.Assign) and isinstance(expr.value, ast.Reduction):
            red = expr.value
            stmt_op = self._RED_STMT_OP.get(red.op)
            if stmt_op and len(red.arms) == 1 and red.arms[0].pred is None and not expr.op:
                # the paper's pattern:  for (k...) target <?= exp;
                loops = []
                for set_name in red.index_sets:
                    isv = self.info.index_sets[set_name]
                    loops.append(
                        f"for ({isv.elem_name} = {min(isv.values)}; "
                        f"{isv.elem_name} <= {max(isv.values)}; {isv.elem_name}++) "
                    )
                return (
                    "".join(loops)
                    + f"{expr_to_text(expr.target)} {stmt_op} "
                    + expr_to_text(red.arms[0].expr)
                )
        return expr_to_text(expr)


def generate_cstar(
    info: ProgramInfo, layouts: Optional[LayoutTable] = None
) -> str:
    """C* source text for a checked UC program (map sections compiled away)."""
    return CStarGenerator(info, layouts).render()
