"""Static scheduling of ``solve`` bodies (paper §3.6, reference [14]).

"If the array references within a solve statement only use constants and
index elements, then the statement can be translated into an equivalent
UC program that uses seq and par statements to execute the assignments in
the order of their dependencies."

We implement that translation: when every assignment writes
``target[elems...]`` (identity subscripts over the construct's grid) and
every reference back into a target array is affine ``elem + const`` with
offsets that are non-positive and not all zero, the dependency level of
each grid point is ``L(x) = 1 + max L(x + d)`` over the dependency offset
vectors ``d``.  Execution is then a ``seq`` over levels of masked ``par``
steps — no readiness bookkeeping, which is exactly why the paper calls
the scheduled form more efficient than the guarded ``*par`` translation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..lang import ast
from ..lang.errors import UCRuntimeError, UCSemanticError
from ..mapping.maps import AffineSub, affine_subscript


@dataclass
class SolveSchedule:
    """A level-by-level execution plan for a solve body."""

    levels: np.ndarray  # per-grid-point dependency level
    max_level: int
    assignments: Sequence[Tuple[Optional[ast.Expr], ast.Assign]]
    stmt: Optional[ast.Node] = None  # the solve UCStmt, for plan caching

    def execute(self, ip, inner) -> None:
        """Run the schedule: one masked par step per level."""
        from ..interp.eval_expr import _truthy, eval_expr
        from ..interp.statements import exec_stmt

        plans = None
        if getattr(ip, "plans_enabled", False) and self.stmt is not None:
            from ..interp.plan import compile_sched_steps

            plans = ip.plan_cache.get_or_build(
                "sched",
                self.stmt,
                inner.grid.axes,
                lambda: compile_sched_steps(self.assignments),
            )

        base = inner.active_mask()
        vps = ip.grid_vpset(inner.grid.shape)
        for level in range(self.max_level + 1):
            # the front end drives the level loop
            ip.machine.clock.charge("host_cm_latency")
            level_mask = base & (self.levels == level)
            if not np.any(level_mask):
                continue
            for k, (pred, assign) in enumerate(self.assignments):
                step = plans[k] if plans is not None else None
                mask = level_mask
                if pred is not None:
                    if step is not None:
                        pv = step[0](ip, inner.with_mask(level_mask))
                    else:
                        pv = eval_expr(ip, pred, inner.with_mask(level_mask))
                    mask = level_mask & np.broadcast_to(
                        np.asarray(_truthy(pv)), inner.grid.shape
                    )
                if np.any(mask):
                    if step is not None:
                        step[1](ip, inner.with_mask(mask))
                    else:
                        exec_stmt(
                            ip,
                            ast.ExprStmt(line=assign.line, col=assign.col, expr=assign),
                            inner.with_mask(mask),
                        )


def try_schedule(
    ip,
    stmt: ast.UCStmt,
    assignments: Sequence[Tuple[Optional[ast.Expr], ast.Assign]],
    inner,
) -> Optional[SolveSchedule]:
    """Build a static schedule, or None when the body is not analysable."""
    grid = inner.grid
    elems = {axis.elem: axis.set_name for axis in grid.axes}
    targets: Set[str] = set()
    for _pred, assign in assignments:
        t = assign.target
        if not isinstance(t, ast.Index):
            return None  # scalar targets have no per-element schedule
        targets.add(t.base)

    # map each target's array axes onto grid axes via its identity subscripts
    elem_to_axis: Dict[str, int] = {axis.elem: k for k, axis in enumerate(grid.axes)}
    deps: List[Tuple[int, ...]] = []
    try:
        for _pred, assign in assignments:
            t = assign.target
            assert isinstance(t, ast.Index)
            axis_of_sub: List[int] = []
            for sub in t.subs:
                a = affine_subscript(sub, elems, ip.info.constants)
                if a.elem is None or a.scale != 1 or a.offset != 0:
                    return None  # target subscripts must be bare elements
                axis_of_sub.append(elem_to_axis[a.elem])
            for d in _dependency_offsets(
                assign.value, _pred, targets, elems, ip.info.constants, axis_of_sub, grid.rank
            ):
                deps.append(d)
    except (_NotSchedulable, UCSemanticError):
        return None

    levels = _dependency_levels(grid.shape, deps)
    if levels is None:
        return None
    return SolveSchedule(
        levels=levels,
        max_level=int(levels.max()),
        assignments=assignments,
        stmt=stmt,
    )


class _NotSchedulable(Exception):
    pass


def affine_ref_axes(
    node: ast.Index,
    elems: Dict[str, str],
    constants: Dict[str, int],
) -> Optional[Tuple[Tuple[Optional[str], int], ...]]:
    """Per-subscript ``(elem, offset)`` pairs for an affine array reference.

    One entry per subscript of ``node``: ``(elem_name, offset)`` where
    ``elem_name`` is ``None`` for a compile-time-constant subscript (the
    offset is then the constant's value).  Returns ``None`` when any
    subscript is not affine ``elem + const`` with scale 1 — negated
    elements, element products, or data-dependent subscripts.  Shared by
    the static scheduler below and the frontier engine's change-mask
    dilation (:mod:`repro.interp.frontier`), which both reason about
    which grid points a reference can reach.
    """
    out: List[Tuple[Optional[str], int]] = []
    for sub in node.subs:
        try:
            a = affine_subscript(sub, elems, constants)
        except UCSemanticError:
            return None
        if a.elem is not None and a.scale != 1:
            return None
        out.append((a.elem, int(a.offset)))
    return tuple(out)


def _dependency_offsets(
    value: ast.Expr,
    pred: Optional[ast.Expr],
    targets: Set[str],
    elems: Dict[str, str],
    constants: Dict[str, int],
    axis_of_sub: List[int],
    grid_rank: int,
):
    """Offset vectors (grid-axis space) of references back into targets."""
    nodes: List[ast.Node] = [value]
    if pred is not None:
        nodes.append(pred)
    grid_axis_of = {e: ax for ax, e in enumerate(elems)}
    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, ast.Reduction):
                # rebinding inside reductions makes the offsets ambiguous
                if _references_targets(node, targets):
                    raise _NotSchedulable()
            if isinstance(node, ast.Index) and node.base in targets:
                axes = affine_ref_axes(node, elems, constants)
                if axes is None:
                    raise _NotSchedulable()
                offsets = [0] * grid_rank
                nonzero = False
                for elem, off in axes:
                    if elem is None:
                        raise _NotSchedulable()
                    # elems preserves insertion order == grid axis order
                    offsets[grid_axis_of[elem]] += off
                    if off != 0:
                        nonzero = True
                if any(o > 0 for o in offsets):
                    raise _NotSchedulable()
                if nonzero:
                    yield tuple(offsets)
                # offset all-zero = reading the element being defined in the
                # same statement; with distinct target arrays per statement
                # (the proper-set rule) a zero offset on *another* target is
                # an instantaneous dependency: treat as schedulable only if
                # it refers to the statement's own target is impossible —
                # conservatively fall back
                elif node.base in targets and len(targets) > 1:
                    raise _NotSchedulable()


def _references_targets(node: ast.Node, targets: Set[str]) -> bool:
    return any(
        isinstance(n, ast.Index) and n.base in targets for n in ast.walk(node)
    )


def _dependency_levels(
    shape: Tuple[int, ...], deps: List[Tuple[int, ...]]
) -> Optional[np.ndarray]:
    """``L(x) = 1 + max L(x+d)`` solved by fixed-point sweeps."""
    levels = np.zeros(shape, dtype=np.int64)
    if not deps:
        return levels
    max_passes = int(sum(shape)) + 2
    for _ in range(max_passes):
        best = np.zeros(shape, dtype=np.int64)
        for d in deps:
            shifted = _shift_levels(levels, d)
            np.maximum(best, shifted + 1, out=best)
        if np.array_equal(best, levels):
            return levels
        levels = best
    return None  # did not converge: forward/circular dependencies


def _shift_levels(levels: np.ndarray, d: Tuple[int, ...]) -> np.ndarray:
    """``out[x] = levels[x + d]`` with out-of-range treated as level -1."""
    out = np.full_like(levels, -1)
    src = []
    dst = []
    for axis, off in enumerate(d):
        n = levels.shape[axis]
        if off == 0:
            src.append(slice(None))
            dst.append(slice(None))
        elif off < 0:
            src.append(slice(0, n + off))
            dst.append(slice(-off, n))
        else:
            src.append(slice(off, n))
            dst.append(slice(0, n - off))
    out[tuple(dst)] = levels[tuple(src)]
    return out
