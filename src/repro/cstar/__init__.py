"""A mini C* runtime: the paper's baseline language, on the same machine.

C* (Rose & Steele, TMC 1987) structures data-parallel programs around
*domains*: a struct replicated once per virtual processor, with member
code executing synchronously on all active instances.  The paper's
figures 6–7 compare UC against hand-written C* (its appendix lists the
programs); this package provides enough of C* to express those programs
as Python-embedded code running on the same simulator with the same cost
model:

* :class:`Domain` — a shaped collection of instances with named fields;
* :class:`Pvar` — parallel values with overloaded arithmetic, comparison,
  ``min_assign`` (C*'s ``<?=``) / ``max_assign`` (``>?=``) and general
  inter-instance indexing ``domain.field.at(...)``;
* activation contexts (``with domain.activate(): ...``) and ``where``
  masks mirroring C*'s selection statement.

Costs: every elementwise op charges one ALU instruction on the domain's
VP set; ``.at`` references are classified with the same locality
classifier UC uses (C* and UC compile to the same Paris operations —
which is exactly the paper's measured result: the curves nearly
coincide).
"""

from .domain import Domain
from .pvar import Pvar
from .runtime import CStarRuntime

__all__ = ["CStarRuntime", "Domain", "Pvar"]
