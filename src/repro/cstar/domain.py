"""C* domains: a struct replicated across a grid of virtual processors.

A domain is declared with a shape and named member fields; member code is
written as Python blocks inside ``with domain.activate():`` (all
instances) optionally narrowed by ``with domain.where(cond):`` (C*'s
selection statement).  Field reads/writes respect the active context and
charge the machine clock, so C* programs produce CM-shaped timings
directly comparable to UC runs on the same machine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..lang.errors import UCRuntimeError
from .pvar import Operand, Pvar

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import CStarRuntime


class Domain:
    """One C* domain: shape + fields + activity context."""

    def __init__(
        self,
        runtime: "CStarRuntime",
        name: str,
        shape: Sequence[int],
        fields: Dict[str, type],
    ) -> None:
        self.runtime = runtime
        self.name = name
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        self.axis_names: Tuple[str, ...] = tuple(
            f"_{name}_ax{k}" for k in range(len(self.shape))
        )
        self.vpset = runtime.machine.vpset(self.shape, name=f"domain:{name}")
        self._fields: Dict[str, np.ndarray] = {}
        self._context_stack: List[np.ndarray] = []
        self._positions: Optional[List[np.ndarray]] = None
        for fname, ftype in fields.items():
            dtype = np.float64 if ftype is float else np.int64
            self._fields[fname] = np.zeros(self.shape, dtype=dtype)
            runtime.machine.clock.charge("alloc", vp_ratio=self.vpset.vp_ratio)

    # -- geometry ---------------------------------------------------------------

    def positions(self) -> List[np.ndarray]:
        if self._positions is None:
            self._positions = list(np.indices(self.shape, dtype=np.int64))
        return self._positions

    def coord(self, axis: int) -> Pvar:
        """Per-instance coordinate along ``axis`` (like ``this - &d[0][0]``
        arithmetic in the paper's init functions)."""
        self.runtime.charge_alu(self)
        return Pvar(self, self.positions()[axis].copy())

    @property
    def size(self) -> int:
        return int(np.prod(self.shape))

    # -- context ------------------------------------------------------------------

    @property
    def context(self) -> np.ndarray:
        if self._context_stack:
            return self._context_stack[-1]
        return np.ones(self.shape, dtype=bool)

    def activate(self) -> "_Activation":
        """``[domain D].{ ... }`` — all instances active."""
        return _Activation(self, np.ones(self.shape, dtype=bool), combine=False)

    def where(self, cond: Union[Pvar, np.ndarray]) -> "_Activation":
        """C* ``where (cond) { ... }`` — narrows the current context."""
        mask = cond.data.astype(bool) if isinstance(cond, Pvar) else np.asarray(cond, bool)
        return _Activation(self, mask, combine=True)

    def active_count(self) -> int:
        return int(np.count_nonzero(self.context))

    # -- field access -----------------------------------------------------------------

    def __getitem__(self, field: str) -> Pvar:
        try:
            return Pvar(self, self._fields[field])
        except KeyError:
            raise UCRuntimeError(f"domain {self.name!r} has no field {field!r}") from None

    def __setitem__(self, field: str, value: Operand) -> None:
        if field not in self._fields:
            raise UCRuntimeError(f"domain {self.name!r} has no field {field!r}")
        data = self._fields[field]
        src = value.data if isinstance(value, Pvar) else np.broadcast_to(np.asarray(value), self.shape)
        self.runtime.charge_alu(self)
        mask = self.context
        if np.issubdtype(data.dtype, np.integer) and np.issubdtype(
            np.asarray(src).dtype, np.floating
        ):
            src = np.trunc(src)
        data[mask] = np.asarray(src)[mask].astype(data.dtype)

    def min_assign(self, field: str, value: Operand) -> None:
        """C*'s ``<?=``: ``field = min(field, value)`` on active instances."""
        data = self._fields[field]
        src = value.data if isinstance(value, Pvar) else np.broadcast_to(np.asarray(value), self.shape)
        self.runtime.charge_alu(self)
        mask = self.context
        data[mask] = np.minimum(data, src.astype(data.dtype))[mask]

    def max_assign(self, field: str, value: Operand) -> None:
        """C*'s ``>?=``."""
        data = self._fields[field]
        src = value.data if isinstance(value, Pvar) else np.broadcast_to(np.asarray(value), self.shape)
        self.runtime.charge_alu(self)
        mask = self.context
        data[mask] = np.maximum(data, src.astype(data.dtype))[mask]

    def load(self, field: str, array: np.ndarray) -> None:
        """Host -> domain bulk load (front-end I/O cost)."""
        array = np.asarray(array)
        if array.shape != self.shape:
            raise UCRuntimeError(
                f"load shape {array.shape} != domain shape {self.shape}"
            )
        rows = int(np.prod(array.shape[:-1])) if array.ndim > 1 else 1
        self.runtime.machine.clock.charge("broadcast", count=max(1, rows))
        self._fields[field] = array.astype(self._fields[field].dtype, copy=True)

    def read(self, field: str) -> np.ndarray:
        return self._fields[field].copy()

    def read_raw(self, field: str) -> np.ndarray:
        """The live storage of ``field`` (runtime internals only)."""
        try:
            return self._fields[field]
        except KeyError:
            raise UCRuntimeError(f"domain {self.name!r} has no field {field!r}") from None

    def __repr__(self) -> str:
        return f"Domain({self.name!r}, shape={self.shape}, fields={sorted(self._fields)})"


class _Activation:
    def __init__(self, domain: Domain, mask: np.ndarray, *, combine: bool) -> None:
        self.domain = domain
        self.mask = mask
        self.combine = combine

    def __enter__(self) -> Domain:
        d = self.domain
        mask = self.mask
        if mask.shape != d.shape:
            mask = np.broadcast_to(mask, d.shape)
        if self.combine and d._context_stack:
            mask = mask & d._context_stack[-1]
        d._context_stack.append(np.asarray(mask, dtype=bool))
        d.runtime.machine.clock.charge("context", vp_ratio=d.vpset.vp_ratio)
        return d

    def __exit__(self, *exc: object) -> None:
        self.domain._context_stack.pop()
        self.domain.runtime.machine.clock.charge(
            "context", vp_ratio=self.domain.vpset.vp_ratio
        )
