"""The C* runtime object: machine handle, cost charging and host loops.

C* has no UC-style store management: the programmer declares exactly the
domains they need (the paper's appendix needs an extra 3-D ``XMED``
domain for the O(N³) shortest-path program precisely because of this),
and the front end drives sequential loops paying a per-iteration
latency — both effects the benchmarks reproduce.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional

import numpy as np

from ..machine import Machine
from ..mapping.locality import RefClass
from .domain import Domain
from .pvar import Pvar


class CStarRuntime:
    """Create domains and drive C* programs on a simulated machine."""

    def __init__(self, machine: Optional[Machine] = None) -> None:
        self.machine = machine if machine is not None else Machine()
        self.domains: Dict[str, Domain] = {}

    def domain(self, name: str, shape, fields: Dict[str, type]) -> Domain:
        """Declare ``domain NAME { fields } name[shape...];``"""
        d = Domain(self, name, shape, fields)
        self.domains[name] = d
        return d

    # -- cost hooks used by Domain/Pvar -------------------------------------------

    def charge_alu(self, domain: Domain) -> None:
        self.machine.clock.charge("alu", vp_ratio=domain.vpset.vp_ratio)

    def charge_news(self, domain: Domain, hops: int) -> None:
        self.machine.clock.charge(
            "news", count=max(1, hops), vp_ratio=domain.vpset.vp_ratio
        )

    def charge_ref(self, domain: Domain, rc: RefClass) -> None:
        clock = self.machine.clock
        ratio = domain.vpset.vp_ratio
        if rc.kind == "news" and clock.costs.news * max(1, rc.news_distance) > clock.costs.router_get:
            rc = RefClass("router", detail=f"long shift ({rc.news_distance} hops)")
        if rc.kind == "local":
            clock.charge("alu", vp_ratio=ratio)
        elif rc.kind == "news":
            clock.charge("news", count=max(1, rc.news_distance), vp_ratio=ratio)
        elif rc.kind == "spread":
            clock.charge_scan(rc.spread_extent, vp_ratio=ratio, steps_per_level=2)
        elif rc.kind == "broadcast":
            clock.charge("host_cm_latency")
            clock.charge("broadcast", vp_ratio=ratio)
        else:
            clock.charge("router_get", vp_ratio=ratio)

    # -- host-side control -----------------------------------------------------------

    def host_loop(self, iterable: Iterable) -> Iterator:
        """A front-end ``for`` loop: one host<->CM turnaround per iteration."""
        for item in iterable:
            self.machine.clock.charge("host_cm_latency")
            yield item

    def reduce_to_host(self, pvar: Pvar, op: str = "add"):
        """Global reduction of a pvar to the front end (one scan tree)."""
        domain = pvar.domain
        self.machine.clock.charge_scan(domain.size, vp_ratio=domain.vpset.vp_ratio)
        self.machine.clock.charge("host_cm_latency")
        vals = pvar.data[domain.context]
        if vals.size == 0:
            return 0
        table = {
            "add": np.sum,
            "min": np.min,
            "max": np.max,
            "logor": lambda v: bool(np.any(v)),
            "logand": lambda v: bool(np.all(v)),
        }
        return table[op](vals)

    # -- inter-domain communication ----------------------------------------------

    def get_from(self, dest: Domain, src: Domain, field: str, *subs) -> Pvar:
        """Gather ``src.field`` into ``dest``'s shape: ``subs`` are
        dest-shaped subscripts (pvars/scalars) addressing ``src``.

        This is C*'s general inter-domain read (``path[i][k].len`` read
        from the 3-D XMED domain in the paper's figure 10)."""
        from ..mapping.layout import Layout
        from ..mapping.locality import classify_reference

        sub_arrays = [s.data if isinstance(s, Pvar) else s for s in subs]
        data = src.read_raw(field)
        if len(sub_arrays) != data.ndim:
            raise ValueError(
                f"domain {src.name!r} needs {data.ndim} subscripts"
            )
        rc = classify_reference(
            sub_arrays,
            dest.shape,
            dest.axis_names,
            Layout(src.name, data.shape),
            positions=dest.positions,
        )
        self.charge_ref(dest, rc)
        idx = tuple(
            np.broadcast_to(np.asarray(s), dest.shape) for s in sub_arrays
        )
        return Pvar(dest, data[idx])

    def send_to(
        self,
        value: Pvar,
        dest: Domain,
        field: str,
        *subs,
        combine: str = "min",
    ) -> None:
        """Combining send: ``dest.field[subs] <combine>= value`` for every
        active source instance (C*'s ``<?=`` across domains)."""
        src_domain = value.domain
        sub_arrays = [
            np.broadcast_to(
                np.asarray(s.data if isinstance(s, Pvar) else s), src_domain.shape
            )
            for s in subs
        ]
        target = dest.read_raw(field)
        if len(sub_arrays) != target.ndim:
            raise ValueError(f"domain {dest.name!r} needs {target.ndim} subscripts")
        ratio = max(src_domain.vpset.vp_ratio, dest.vpset.vp_ratio)
        self.machine.clock.charge("router_send", vp_ratio=ratio)
        mask = src_domain.context
        flat_idx = np.ravel_multi_index(
            tuple(sa[mask] for sa in sub_arrays), target.shape
        )
        vals = value.data[mask].astype(target.dtype)
        flat = target.reshape(-1)
        ops = {
            "min": np.minimum.at,
            "max": np.maximum.at,
            "add": np.add.at,
            "overwrite": lambda t, i, v: t.__setitem__(i, v),
        }
        ops[combine](flat, flat_idx, vals)

    def global_or(self, pvar: Pvar) -> bool:
        """The wired global-OR line (cheap any-active test)."""
        domain = pvar.domain
        self.machine.clock.charge("global_or", vp_ratio=domain.vpset.vp_ratio)
        return bool(np.any(pvar.data.astype(bool) & domain.context))

    @property
    def elapsed_us(self) -> float:
        return self.machine.clock.time_us
