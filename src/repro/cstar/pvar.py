"""Parallel variables: per-instance values with overloaded operators.

A :class:`Pvar` wraps a numpy array shaped like its domain.  Arithmetic
between pvars of one domain (or with scalars) charges one ALU op; the
result is a fresh temporary pvar.  ``Pvar.at(*subs)`` fetches from other
instances, classified and charged like any CM reference.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence, Union

import numpy as np

from ..lang.errors import UCRuntimeError
from ..mapping.layout import Layout
from ..mapping.locality import classify_reference

if TYPE_CHECKING:  # pragma: no cover
    from .domain import Domain

Operand = Union["Pvar", int, float, np.ndarray]


class Pvar:
    """One parallel value living on a domain's VP set."""

    __array_priority__ = 100  # keep numpy from hijacking reflected ops

    def __init__(self, domain: "Domain", data: np.ndarray) -> None:
        self.domain = domain
        self.data = data

    # -- helpers -----------------------------------------------------------

    def _coerce(self, other: Operand) -> np.ndarray:
        if isinstance(other, Pvar):
            if other.domain is not self.domain:
                raise UCRuntimeError("pvar operands live on different domains")
            return other.data
        if isinstance(other, np.ndarray):
            return np.broadcast_to(other, self.domain.shape)
        return np.broadcast_to(np.asarray(other), self.domain.shape)

    def _emit(self, result: np.ndarray) -> "Pvar":
        self.domain.runtime.charge_alu(self.domain)
        return Pvar(self.domain, result)

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other: Operand) -> "Pvar":
        return self._emit(self.data + self._coerce(other))

    __radd__ = __add__

    def __sub__(self, other: Operand) -> "Pvar":
        return self._emit(self.data - self._coerce(other))

    def __rsub__(self, other: Operand) -> "Pvar":
        return self._emit(self._coerce(other) - self.data)

    def __mul__(self, other: Operand) -> "Pvar":
        return self._emit(self.data * self._coerce(other))

    __rmul__ = __mul__

    def __floordiv__(self, other: Operand) -> "Pvar":
        return self._emit(self.data // self._coerce(other))

    def __mod__(self, other: Operand) -> "Pvar":
        return self._emit(np.mod(self.data, self._coerce(other)))

    def __neg__(self) -> "Pvar":
        return self._emit(-self.data)

    def __abs__(self) -> "Pvar":
        return self._emit(np.abs(self.data))

    # -- comparisons (return boolean pvars) ----------------------------------

    def __eq__(self, other: object) -> "Pvar":  # type: ignore[override]
        return self._emit(self.data == self._coerce(other))  # type: ignore[arg-type]

    def __ne__(self, other: object) -> "Pvar":  # type: ignore[override]
        return self._emit(self.data != self._coerce(other))  # type: ignore[arg-type]

    def __lt__(self, other: Operand) -> "Pvar":
        return self._emit(self.data < self._coerce(other))

    def __le__(self, other: Operand) -> "Pvar":
        return self._emit(self.data <= self._coerce(other))

    def __gt__(self, other: Operand) -> "Pvar":
        return self._emit(self.data > self._coerce(other))

    def __ge__(self, other: Operand) -> "Pvar":
        return self._emit(self.data >= self._coerce(other))

    def __and__(self, other: Operand) -> "Pvar":
        return self._emit(self.data.astype(bool) & self._coerce(other).astype(bool))

    def __or__(self, other: Operand) -> "Pvar":
        return self._emit(self.data.astype(bool) | self._coerce(other).astype(bool))

    def __invert__(self) -> "Pvar":
        return self._emit(~self.data.astype(bool))

    def minimum(self, other: Operand) -> "Pvar":
        return self._emit(np.minimum(self.data, self._coerce(other)))

    def maximum(self, other: Operand) -> "Pvar":
        return self._emit(np.maximum(self.data, self._coerce(other)))

    def __hash__(self) -> int:  # __eq__ is overloaded; identity hash
        return id(self)

    # -- inter-instance access ------------------------------------------------

    def at(self, *subs: Operand) -> "Pvar":
        """Fetch this field from the instance addressed by ``subs``.

        ``path.len.at(i, k)`` mirrors C*'s ``path[i][k].len``.  Subscripts
        may be pvars, scalars or arrays; the reference is classified and
        charged like a UC array reference.
        """
        if len(subs) != len(self.domain.shape):
            raise UCRuntimeError(
                f"domain {self.domain.name!r} needs {len(self.domain.shape)} "
                f"subscripts, got {len(subs)}"
            )
        sub_arrays = []
        for s in subs:
            if isinstance(s, Pvar):
                sub_arrays.append(s.data)
            else:
                sub_arrays.append(s)
        rc = classify_reference(
            sub_arrays,
            self.domain.shape,
            self.domain.axis_names,
            Layout(self.domain.name, self.domain.shape),
            positions=self.domain.positions,
        )
        self.domain.runtime.charge_ref(self.domain, rc)
        idx = []
        for a, s in enumerate(sub_arrays):
            arr = np.broadcast_to(np.asarray(s), self.domain.shape)
            if arr.min() < 0 or arr.max() >= self.domain.shape[a]:
                raise UCRuntimeError(
                    f"domain subscript {a} out of range for {self.domain.name!r}"
                )
            idx.append(arr)
        return Pvar(self.domain, self.data[tuple(idx)])

    def shifted(self, axis: int, offset: int, *, border: Union[int, float] = 0) -> "Pvar":
        """NEWS fetch: each instance reads the value ``offset`` grid steps
        away along ``axis`` (edge instances read ``border``).

        This is C*'s cheap neighbour communication — ``offset`` hops on
        the NEWS grid, far below router cost — and what grid stencils
        (the figure-11 relaxation) compile to.
        """
        shape = self.domain.shape
        if not 0 <= axis < len(shape):
            raise UCRuntimeError(f"axis {axis} out of range for {self.domain.name!r}")
        if offset == 0:
            return Pvar(self.domain, self.data.copy())
        self.domain.runtime.charge_news(self.domain, abs(int(offset)))
        out = np.full_like(self.data, border)
        n = shape[axis]
        if abs(offset) < n:
            src = [slice(None)] * len(shape)
            dst = [slice(None)] * len(shape)
            if offset > 0:
                src[axis] = slice(offset, None)
                dst[axis] = slice(0, n - offset)
            else:
                src[axis] = slice(0, n + offset)
                dst[axis] = slice(-offset, None)
            out[tuple(dst)] = self.data[tuple(src)]
        return Pvar(self.domain, out)

    def to_array(self) -> np.ndarray:
        """Host-side copy of the values."""
        return self.data.copy()

    def __repr__(self) -> str:
        return f"Pvar(domain={self.domain.name!r}, shape={self.domain.shape})"
