"""The paper's appendix programs, transcribed into the mini C* runtime.

Figure 9 — shortest path with O(N²) parallelism: one ``PATH`` domain of
N×N instances; the front end loops ``k`` over the N intermediate nodes
and every instance executes ``len <?= path[i][k].len + path[k][j].len``.

Figure 10 — shortest path with O(N³) parallelism: because C* ties
parallelism to data declarations, the programmer must declare an extra
3-D ``XMED`` domain of N×N×N instances (the paper makes exactly this
point when comparing program sizes); each sweep gathers ``d[i][k]`` and
``d[k][j]`` into XMED, adds locally, and combining-sends the minimum back
into PATH.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..machine import Machine
from .runtime import CStarRuntime


@dataclass
class CStarResult:
    distances: np.ndarray
    elapsed_us: float
    runtime: CStarRuntime


def apsp_n2(dist: np.ndarray, machine: Optional[Machine] = None) -> CStarResult:
    """Figure 9: Floyd–Warshall with one VP per (i, j) pair."""
    dist = np.asarray(dist)
    n = dist.shape[0]
    rt = CStarRuntime(machine)
    path = rt.domain("PATH", (n, n), {"i": int, "j": int, "len": int})
    with path.activate() as d:
        # void PATH::init() — each instance derives (i, j) from its address
        d["i"] = d.coord(0)
        d["j"] = d.coord(1)
    path.load("len", dist)
    rt.machine.clock.reset()  # time the algorithm, not input I/O
    for k in rt.host_loop(range(n)):
        with path.activate() as d:
            via = d["len"].at(d["i"], k) + d["len"].at(k, d["j"])
            d.min_assign("len", via)
    return CStarResult(path.read("len"), rt.elapsed_us, rt)


def apsp_n3(
    dist: np.ndarray,
    machine: Optional[Machine] = None,
    *,
    iterations: Optional[int] = None,
) -> CStarResult:
    """Figure 10: min-plus relaxation with one VP per (i, j, k) triple.

    ``iterations`` defaults to ⌈log₂ N⌉ — with the whole matrix updated
    synchronously each sweep, that already covers all N-hop paths (the
    paper's listing loops a conservative N times; pass ``iterations=n``
    to reproduce that exactly).
    """
    dist = np.asarray(dist)
    n = dist.shape[0]
    iters = iterations if iterations is not None else max(1, math.ceil(math.log2(max(2, n))))
    rt = CStarRuntime(machine)
    path = rt.domain("PATH", (n, n), {"i": int, "j": int, "len": int})
    xmed = rt.domain("XMED", (n, n, n), {"i": int, "j": int, "k": int})
    path.load("len", dist)
    with xmed.activate() as x:
        x["i"] = x.coord(0)
        x["j"] = x.coord(1)
        x["k"] = x.coord(2)
    rt.machine.clock.reset()  # time the algorithm, not input I/O
    for _cnt in rt.host_loop(range(iters)):
        with xmed.activate() as x:
            a = rt.get_from(xmed, path, "len", x["i"], x["k"])  # d[i][k]
            b = rt.get_from(xmed, path, "len", x["k"], x["j"])  # d[k][j]
            via = a + b
            rt.send_to(via, path, "len", x["i"], x["j"], combine="min")
    return CStarResult(path.read("len"), rt.elapsed_us, rt)
