"""UC3xx: predicted communication tiers and the maps that improve them.

Every statically-classified reference is pushed through the *same*
:func:`repro.interp.commtiers.decide_tier` the engines use, so the lint
names the tier the machine will actually charge:

* ``router`` traffic is a warning (UC301) — with a concrete map
  suggestion when the pattern is a transpose or a constant shift;
* ``spread`` (UC302), ``news`` (UC303) and ``broadcast`` (UC304) are
  informational: cheap, but each has a map that makes it cheaper;
* UC305 (info) flags references the placement model proves cross the
  shard boundary under the program's *own* map section — the same
  :meth:`~repro.mapping.placement.Placement.split` the runtime sink
  charges from, evaluated at the partition axis the same search the
  runtime uses would pick — with a fix-it naming the fold / permute /
  copy map that would localize the traffic.

References already demoted to ``local`` — or promoted to the
precomputed ``permute`` tier by an active map — produce no UC301-304
diagnostic.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from ..machine.config import CostTable
from .context import AnalysisModel
from .diagnostics import Diagnostic
from .staticref import A, SiteVerdict


def _text(node) -> str:
    from ..compiler.cstar_gen import expr_to_text  # lazy: avoid import cycle

    return expr_to_text(node)


#: shard count the UC305 cross-shard lint models.  Any K > 1 proves the
#: same set of references cross (the affine owner map only rescales the
#: band widths); 4 matches the benchmark partition, so the lint's
#: elements-per-sweep figures line up with ``repro run --shards 4``.
LINT_SHARDS = 4


def analyze_comm(
    model: AnalysisModel,
    verdicts: Sequence[SiteVerdict],
    costs: CostTable,
    file: str,
) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    seen: Set[Tuple[int, int, str, str, bool]] = set()
    for v in verdicts:
        for write in (False, True):
            if write and not v.ref.write:
                continue
            if not write and not v.ref.read:
                continue
            tier = v.tier(costs, write=write)
            if tier in (None, "local", "permute"):
                continue
            d = _diag_for(model, v, tier, write, file)
            if d is None:
                continue
            key = (d.line, d.col, v.ref.node.base, d.code, write)
            if key in seen:
                continue
            seen.add(key)
            diags.append(d)
    diags.extend(_shard_lints(model, verdicts, costs, file))
    return diags


def _shard_lints(
    model: AnalysisModel,
    verdicts: Sequence[SiteVerdict],
    costs: CostTable,
    file: str,
) -> List[Diagnostic]:
    """UC305: references still crossing shards under the best placement.

    Shares :func:`~repro.mapping.placement.score_axes_verdicts` and
    :meth:`~repro.mapping.placement.Placement.split` with the runtime
    tier machinery, so the lint flags exactly the slabs the shard ledger
    would charge."""
    from ..mapping.placement import Placement, score_axes_verdicts

    try:
        scored = score_axes_verdicts(verdicts, model.layouts, LINT_SHARDS)
    except Exception:  # pragma: no cover - defensive: lint must not crash
        return []
    if not scored or scored[0][0] == 0:
        return []  # a placement with zero cross-shard traffic exists
    axis = scored[0][1]
    pl = Placement(LINT_SHARDS, axis=axis, policy="map")
    diags: List[Diagnostic] = []
    seen: Set[Tuple[int, int, str, bool]] = set()
    for v in verdicts:
        for write in (False, True):
            if write and not v.ref.write:
                continue
            if not write and not v.ref.read:
                continue
            tier = v.tier(costs, write=write)
            if tier in (None, "local", "broadcast"):
                continue
            rc = v.rc_write if write else v.rc
            if rc is None:
                continue
            layout = (
                model.layouts.get(v.ref.node.base)
                if v.ref.node.base in model.layouts
                else None
            )
            grid_shape = tuple(a.extent for a in v.ref.axes)
            split = pl.split(rc, layout, grid_shape, write)
            if split.cross == 0:
                continue
            node = v.ref.node
            key = (node.line, node.col, node.base, write)
            if key in seen:
                continue
            seen.add(key)
            text = _text(node)
            role = "written" if write else "serviced"
            diags.append(
                Diagnostic(
                    code="UC305",
                    severity="info",
                    message=(
                        f"{text} is {role} across the shard boundary under a "
                        f"{LINT_SHARDS}-way partition (axis {axis}): "
                        f"{split.cross} element(s) per sweep on the "
                        "inter-machine link"
                    ),
                    line=node.line,
                    col=node.col,
                    file=file,
                    hint=_shard_hint(v, rc, layout, pl, grid_shape, text),
                )
            )
    return diags


def _shard_hint(v, rc, layout, pl, grid_shape, text: str) -> str:
    """Name the fold/permute/copy map that would localize the reference."""
    from ..mapping.placement import rank_of

    base = v.ref.node.base
    if rc.axes is None:
        return (
            "data-dependent subscripts scatter across every shard; index "
            f"{base!r} with affine expressions of the construct elements so "
            "the placement can localize them"
        )
    g_a = pl.grid_axis(len(grid_shape))
    elem = v.ref.axes[g_a].elem  # the partitioned construct element
    part_desc = None
    if layout is not None and rc.axes and len(rc.axes) == rank_of(layout):
        perm = layout.axis_perm or tuple(range(rank_of(layout)))
        part_desc = rc.axes[perm[min(pl.axis, rank_of(layout) - 1)]]
    if (
        part_desc is not None
        and part_desc[0] == "i"
        and part_desc[1] == g_a
        and part_desc[2] != 0
    ):
        return (
            f"only the shift's halo crosses: a permute map with offset "
            f"{int(part_desc[2])} storing {text} locally removes the exchange"
        )
    if part_desc is not None and part_desc[0] == "m" and part_desc[1] == g_a:
        return (
            f"a mirror fold map on {base!r} co-locates each element with its "
            f"reflection, making {text} shard-local"
        )
    for slot, desc in enumerate(rc.axes):
        if desc[0] in ("i", "m") and desc[1] == g_a:
            return (
                f"a permute map transposing {base!r} so subscript axis {slot} "
                f"(bound to element {elem!r}) lands on the partitioned slot "
                f"would make {text} shard-local"
            )
    return (
        f"{text} has no subscript bound to the partitioned element {elem!r}: "
        f"a copy map replicating {base!r} along {elem!r} gives every shard a "
        "local replica"
    )


def _diag_for(
    model: AnalysisModel, v: SiteVerdict, tier: str, write: bool, file: str
):
    node = v.ref.node
    rc = v.rc_write if write else v.rc
    text = _text(node)
    role = "written through" if write else "serviced by"
    if tier == "router":
        hint = ""
        if rc is not None and rc.axes is None:
            hint = (
                "data-dependent subscripts need the general router; index "
                "with affine expressions of the construct elements to enable "
                "a cheaper tier"
            )
        elif rc is not None and "permutes the grid alignment" in rc.detail:
            hint = (
                f"add a transposing permute map for {node.base!r} so {text} "
                "becomes a precomputed permutation (docs/LANGUAGE.md, map "
                "sections)"
            )
        elif rc is not None and rc.kind == "news":
            hint = (
                f"the constant shift is longer than one router cycle; a "
                f"permute map storing {text} locally removes it entirely"
            )
        return Diagnostic(
            code="UC301",
            severity="warning",
            message=(
                f"{text} is {role} the general router"
                + (f" ({rc.detail})" if rc is not None and rc.detail else "")
            ),
            line=node.line,
            col=node.col,
            file=file,
            hint=hint,
        )
    if tier == "spread":
        unused = _unused_elems(model, v)
        which = ", ".join(unused) if unused else "a fixed row/column"
        return Diagnostic(
            code="UC302",
            severity="info",
            message=(
                f"{text} is constant along {which}: serviced by a log-depth "
                "spread"
            ),
            line=node.line,
            col=node.col,
            file=file,
            hint=f"copy {node.base!r} along {which} to avoid spreading {text}",
        )
    if tier == "news":
        dist = rc.news_distance if rc is not None else 0
        return Diagnostic(
            code="UC303",
            severity="info",
            message=f"{text} is a NEWS shift of {dist} hop(s)",
            line=node.line,
            col=node.col,
            file=file,
            hint=(
                f"permute {node.base!r} with offset {dist} so that {text} is "
                "stored locally"
            ),
        )
    if tier == "broadcast":
        return Diagnostic(
            code="UC304",
            severity="info",
            message=f"{text} is uniform across the grid (front-end broadcast)",
            line=node.line,
            col=node.col,
            file=file,
            hint="",
        )
    return None


def _unused_elems(model: AnalysisModel, v: SiteVerdict) -> List[str]:
    used = {s.g for s in v.subvals if s.kind == A}
    layout = (
        model.layouts.get(v.ref.node.base) if v.ref.node.base in model.layouts else None
    )
    out: List[str] = []
    for g, axis in enumerate(v.ref.axes):
        if g in used or axis.extent <= 1:
            continue
        if layout is not None and layout.copy_elem == axis.elem:
            continue
        out.append(axis.elem)
    return out
