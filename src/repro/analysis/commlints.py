"""UC3xx: predicted communication tiers and the maps that improve them.

Every statically-classified reference is pushed through the *same*
:func:`repro.interp.commtiers.decide_tier` the engines use, so the lint
names the tier the machine will actually charge:

* ``router`` traffic is a warning (UC301) — with a concrete map
  suggestion when the pattern is a transpose or a constant shift;
* ``spread`` (UC302), ``news`` (UC303) and ``broadcast`` (UC304) are
  informational: cheap, but each has a map that makes it cheaper.

References already demoted to ``local`` — or promoted to the
precomputed ``permute`` tier by an active map — produce no diagnostic.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from ..machine.config import CostTable
from .context import AnalysisModel
from .diagnostics import Diagnostic
from .staticref import A, SiteVerdict


def _text(node) -> str:
    from ..compiler.cstar_gen import expr_to_text  # lazy: avoid import cycle

    return expr_to_text(node)


def analyze_comm(
    model: AnalysisModel,
    verdicts: Sequence[SiteVerdict],
    costs: CostTable,
    file: str,
) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    seen: Set[Tuple[int, int, str, str, bool]] = set()
    for v in verdicts:
        for write in (False, True):
            if write and not v.ref.write:
                continue
            if not write and not v.ref.read:
                continue
            tier = v.tier(costs, write=write)
            if tier in (None, "local", "permute"):
                continue
            d = _diag_for(model, v, tier, write, file)
            if d is None:
                continue
            key = (d.line, d.col, v.ref.node.base, d.code, write)
            if key in seen:
                continue
            seen.add(key)
            diags.append(d)
    return diags


def _diag_for(
    model: AnalysisModel, v: SiteVerdict, tier: str, write: bool, file: str
):
    node = v.ref.node
    rc = v.rc_write if write else v.rc
    text = _text(node)
    role = "written through" if write else "serviced by"
    if tier == "router":
        hint = ""
        if rc is not None and rc.axes is None:
            hint = (
                "data-dependent subscripts need the general router; index "
                "with affine expressions of the construct elements to enable "
                "a cheaper tier"
            )
        elif rc is not None and "permutes the grid alignment" in rc.detail:
            hint = (
                f"add a transposing permute map for {node.base!r} so {text} "
                "becomes a precomputed permutation (docs/LANGUAGE.md, map "
                "sections)"
            )
        elif rc is not None and rc.kind == "news":
            hint = (
                f"the constant shift is longer than one router cycle; a "
                f"permute map storing {text} locally removes it entirely"
            )
        return Diagnostic(
            code="UC301",
            severity="warning",
            message=(
                f"{text} is {role} the general router"
                + (f" ({rc.detail})" if rc is not None and rc.detail else "")
            ),
            line=node.line,
            col=node.col,
            file=file,
            hint=hint,
        )
    if tier == "spread":
        unused = _unused_elems(model, v)
        which = ", ".join(unused) if unused else "a fixed row/column"
        return Diagnostic(
            code="UC302",
            severity="info",
            message=(
                f"{text} is constant along {which}: serviced by a log-depth "
                "spread"
            ),
            line=node.line,
            col=node.col,
            file=file,
            hint=f"copy {node.base!r} along {which} to avoid spreading {text}",
        )
    if tier == "news":
        dist = rc.news_distance if rc is not None else 0
        return Diagnostic(
            code="UC303",
            severity="info",
            message=f"{text} is a NEWS shift of {dist} hop(s)",
            line=node.line,
            col=node.col,
            file=file,
            hint=(
                f"permute {node.base!r} with offset {dist} so that {text} is "
                "stored locally"
            ),
        )
    if tier == "broadcast":
        return Diagnostic(
            code="UC304",
            severity="info",
            message=f"{text} is uniform across the grid (front-end broadcast)",
            line=node.line,
            col=node.col,
            file=file,
            hint="",
        )
    return None


def _unused_elems(model: AnalysisModel, v: SiteVerdict) -> List[str]:
    used = {s.g for s in v.subvals if s.kind == A}
    layout = (
        model.layouts.get(v.ref.node.base) if v.ref.node.base in model.layouts else None
    )
    out: List[str] = []
    for g, axis in enumerate(v.ref.axes):
        if g in used or axis.extent <= 1:
            continue
        if layout is not None and layout.copy_elem == axis.elem:
            continue
        out.append(axis.elem)
    return out
