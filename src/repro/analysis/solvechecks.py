"""UC2xx: proper-equation checks for ``solve`` (paper §3.6).

The guarded executor (``interp/solve.py``) starts every target element
*undefined* and only fires an assignment for lanes whose right-hand side
touches defined values.  A dependence that can never become defined
therefore deadlocks at run time with "solve cannot make progress".  Two
statically-detectable shapes of that deadlock:

* an assignment whose RHS reads its *own* target element (identical
  realised subscripts, net offset zero) — the lane waits on itself;
* a cycle of assignments whose identity-structured references chain back
  to the starting array with net offset zero along every axis.

Pred-less cycles are errors (every lane of the grid deadlocks);
predicated ones are warnings (a mask may break the cycle, but the
analysis cannot see how).  ``*solve`` iterates to a global fixed point
and never consults readiness, so it is exempt.

UC202 flags an ``others`` arm made unreachable by a constantly-true
``st`` predicate before it, and UC203 flags any ``st`` predicate in a
``solve`` that folds to a compile-time constant — a solve arm's
predicate is meant to carve the equation domain, so a constant one is
almost always a typo (and a constantly-false one deletes the equation).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..lang import ast
from ..lang.semantics import _ConstEvaluator
from .context import AnalysisModel, ConstructSite
from .diagnostics import Diagnostic
from .staticref import A, C, SubVal, realize_subscript


def analyze_solves(model: AnalysisModel, file: str) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    consts = _ConstEvaluator(model.info.constants)
    for site in model.constructs:
        if site.kind != "solve" or site.stmt.star:
            continue
        _constant_preds(site, consts, file, diags)
        _dependence_cycles(model, site, file, diags)
    _unreachable_others(model, consts, file, diags)
    return diags


def _const_value(consts: _ConstEvaluator, expr: ast.Expr) -> Optional[int]:
    try:
        return consts.eval(expr)
    except Exception:
        return None


def _constant_preds(
    site: ConstructSite, consts: _ConstEvaluator, file: str, diags: List[Diagnostic]
) -> None:
    for block in site.stmt.blocks:
        if block.pred is None:
            continue
        value = _const_value(consts, block.pred)
        if value is None:
            continue
        what = (
            "constantly false — the equation set it guards never fires"
            if value == 0
            else "constantly true — it does not restrict the equation domain"
        )
        diags.append(
            Diagnostic(
                code="UC203",
                severity="warning",
                message=f"'st' predicate in solve is {what}",
                line=block.pred.line,
                col=block.pred.col,
                file=file,
                hint="solve predicates should depend on the index elements",
            )
        )


def _unreachable_others(
    model: AnalysisModel, consts: _ConstEvaluator, file: str, diags: List[Diagnostic]
) -> None:
    for site in model.constructs:
        stmt = site.stmt
        if stmt.others is None:
            continue
        for block in stmt.blocks:
            if block.pred is None:
                continue
            value = _const_value(consts, block.pred)
            if value is not None and value != 0:
                diags.append(
                    Diagnostic(
                        code="UC202",
                        severity="warning",
                        message=(
                            "'others' arm is unreachable: the st predicate at "
                            f"line {block.pred.line} is constantly true"
                        ),
                        line=stmt.others.line,
                        col=stmt.others.col,
                        file=file,
                        hint="remove the others arm or fix the predicate",
                    )
                )
                break


# ---------------------------------------------------------------------------
# dependence cycles
# ---------------------------------------------------------------------------


def _solve_assignments(site: ConstructSite) -> List[Tuple[Optional[ast.Expr], ast.Assign]]:
    out: List[Tuple[Optional[ast.Expr], ast.Assign]] = []
    for block in site.stmt.blocks:
        for assign in _assigns_of(block.stmt):
            out.append((block.pred, assign))
    return out


def _assigns_of(stmt: ast.Stmt) -> List[ast.Assign]:
    if isinstance(stmt, ast.ExprStmt) and isinstance(stmt.expr, ast.Assign):
        return [stmt.expr]
    if isinstance(stmt, ast.Block):
        out: List[ast.Assign] = []
        for s in stmt.stmts:
            out.extend(_assigns_of(s))
        return out
    return []  # malformed bodies are the runtime's error, not a lint


def _identity_offsets(
    subvals: Sequence[SubVal]
) -> Optional[Tuple[Tuple[int, int], ...]]:
    """((grid axis, offset), ...) when every subscript is ``elem + const``
    with exactly-known values forming an arithmetic identity, else None."""
    out: List[Tuple[int, int]] = []
    for v in subvals:
        if v.kind == C:
            continue  # constant rows pin one array axis; no grid dependence
        if v.kind != A or not v.exact or v.vals.size == 0:
            return None
        base = int(v.vals[0])
        if any(int(v.vals[k]) != base + k for k in range(v.vals.size)):
            return None
        out.append((v.g, base))
    return tuple(out)


def _refs_outside_escapes(expr: ast.Expr) -> List[ast.Index]:
    """Array references whose readiness unconditionally blocks the
    assignment: everything except ternary branches (the readiness formula
    discards the untaken side)."""
    out: List[ast.Index] = []

    def go(e: ast.Expr) -> None:
        if isinstance(e, ast.Index):
            out.append(e)
            for s in e.subs:
                go(s)
        elif isinstance(e, ast.Unary):
            go(e.operand)
        elif isinstance(e, ast.Binary):
            go(e.left)
            go(e.right)
        elif isinstance(e, ast.Ternary):
            go(e.cond)
        elif isinstance(e, ast.Call):
            for a in e.args:
                go(a)
        elif isinstance(e, ast.Assign):
            go(e.value)
        # reductions extend the grid: their references cover whole slices,
        # which the offset model here cannot describe — skip them

    go(expr)
    return out


def _dependence_cycles(
    model: AnalysisModel, site: ConstructSite, file: str, diags: List[Diagnostic]
) -> None:
    assignments = _solve_assignments(site)
    if not assignments:
        return
    # node per assignment; edges carry per-axis offset deltas (RHS ref
    # offset minus target offset on the same grid axis)
    targets: List[Optional[Tuple[str, Dict[int, int]]]] = []
    for _pred, assign in assignments:
        t = assign.target
        if not isinstance(t, ast.Index):
            targets.append(None)
            continue
        subvals = [realize_subscript(s, site, model) for s in t.subs]
        offs = _identity_offsets(subvals)
        targets.append((t.base, dict(offs)) if offs is not None else None)

    edges: List[List[Tuple[int, Dict[int, int], ast.Index]]] = [
        [] for _ in assignments
    ]
    for k, (_pred, assign) in enumerate(assignments):
        if targets[k] is None:
            continue
        for ref in _refs_outside_escapes(assign.value):
            for m, tgt in enumerate(targets):
                if tgt is None or tgt[0] != ref.base:
                    continue
                subvals = [realize_subscript(s, site, model) for s in ref.subs]
                offs = _identity_offsets(subvals)
                if offs is None:
                    continue
                delta: Dict[int, int] = {}
                for g in set(dict(offs)) | set(tgt[1]):
                    delta[g] = dict(offs).get(g, 0) - tgt[1].get(g, 0)
                edges[k].append((m, delta, ref))

    # DFS for cycles whose per-axis offsets sum to zero
    reported = set()
    n = len(assignments)

    def dfs(start: int, node: int, total: Dict[int, int], path: List[int]) -> None:
        for m, delta, ref in edges[node]:
            new_total = dict(total)
            for g, d in delta.items():
                new_total[g] = new_total.get(g, 0) + d
            if m == start:
                if all(d == 0 for d in new_total.values()):
                    _report_cycle(
                        assignments, path + [node], start, ref, site, file, diags, reported
                    )
                continue
            if m in path or m == node or len(path) >= n:
                continue
            dfs(start, m, new_total, path + [node])

    for k in range(n):
        dfs(k, k, {}, [])


def _report_cycle(
    assignments,
    path: List[int],
    start: int,
    ref: ast.Index,
    site: ConstructSite,
    file: str,
    diags: List[Diagnostic],
    reported: set,
) -> None:
    key = (tuple(sorted(set(path))), start)
    if key in reported:
        return
    reported.add(key)
    preds = [assignments[k][0] for k in set(path) | {start}]
    guarded = any(p is not None for p in preds)
    bases = sorted({
        assignments[k][1].target.base  # type: ignore[union-attr]
        for k in set(path) | {start}
        if isinstance(assignments[k][1].target, ast.Index)
    })
    assign = assignments[start][1]
    if len(bases) == 1 and len(set(path)) <= 1:
        message = (
            f"solve equation for {bases[0]!r} depends on its own element "
            f"(reference at line {ref.line} has net offset zero): the "
            "lane can never become ready"
        )
    else:
        message = (
            "solve equations form a dependence cycle with net offset zero "
            f"({' -> '.join(bases) or 'scalar targets'}): no lane on the "
            "cycle can become ready"
        )
    diags.append(
        Diagnostic(
            code="UC201",
            severity="warning" if guarded else "error",
            message=message,
            line=assign.target.line,
            col=assign.target.col,
            file=file,
            hint=(
                "a proper system must let every element be computed from "
                "already-defined ones — shift the reference (e.g. a[i-1]) or "
                "add a base-case st arm (paper §3.6)"
            ),
        )
    )
