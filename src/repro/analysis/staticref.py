"""Static subscript realisation: the lint-time twin of the runtime classifier.

Every array reference the walker records is re-evaluated *symbolically*
over the grid that surrounds it: a subscript expression either reduces
to a compile-time constant, to a vector of values along exactly one grid
axis (the element's realised values pushed through the arithmetic, with
C semantics borrowed from the interpreter's own ``apply_binop``), to a
grid-uniform value the analysis cannot pin down (a ``seq`` element or a
host scalar), or to "data-dependent" (array contents, calls, several
elements at once).

Fully-known realisations feed :func:`repro.mapping.locality.classify_affine`
— the *same* routine both engines use — so the static verdict is
bit-identical to what the runtime classifier will compute, and
:func:`repro.interp.commtiers.decide_tier` turns it into the same tier.
Those exact verdicts are the ones the runtime sanitizer is allowed to
hold the engines to; inexact ones only produce advisory lints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..interp.commtiers import decide_tier
from ..lang import ast
from ..lang.errors import UCError
from ..machine.config import CostTable, MachineConfig
from ..mapping.layout import Layout
from ..mapping.locality import RefClass, classify_affine, classify_write_affine
from .context import AnalysisModel, RefSite

#: subscript value kinds: constant / single-axis vector / uniform-unknown /
#: data-dependent
C, A, U, D = "c", "a", "u", "d"


@dataclass(frozen=True)
class SubVal:
    """Statically realised value of one subscript expression."""

    kind: str  # 'c' | 'a' | 'u' | 'd'
    value: int = 0  # kind 'c'
    g: int = -1  # kind 'a': grid axis the value varies along
    vals: Optional[np.ndarray] = None  # kind 'a': value at each coordinate
    #: False when a placeholder stood in for an unknown uniform term —
    #: the *structure* is right but the numbers are not trustworthy
    exact: bool = True

    def bounds(self) -> Optional[Tuple[int, int]]:
        """(min, max) of the realised values, when exactly known."""
        if not self.exact:
            return None
        if self.kind == C:
            return (self.value, self.value)
        if self.kind == A:
            return (int(self.vals.min()), int(self.vals.max()))
        return None


_DATA = SubVal(D, exact=False)


def _apply_binop(op: str, a, b, node: ast.Node):
    from ..interp.eval_expr import apply_binop

    return apply_binop(op, a, b, node)


def _combine(op: str, left: SubVal, right: SubVal, node: ast.Node) -> SubVal:
    if left.kind == D or right.kind == D:
        return _DATA
    if left.kind == A and right.kind == A and left.g != right.g:
        return _DATA  # varies along two grid axes: no single-axis structure
    exact = left.exact and right.exact
    try:
        if left.kind == A or right.kind == A:
            g = left.g if left.kind == A else right.g
            lv = left.vals if left.kind == A else np.int64(left.value)
            rv = right.vals if right.kind == A else np.int64(right.value)
            out = np.asarray(_apply_binop(op, lv, rv, node), dtype=np.int64)
            return SubVal(A, g=g, vals=out, exact=exact)
        if left.kind == C and right.kind == C:
            out = int(_apply_binop(op, left.value, right.value, node))
            return SubVal(C, value=out, exact=exact)
    except (UCError, TypeError, ValueError, OverflowError):
        return _DATA
    # at least one grid-uniform unknown: still uniform, value untrusted
    return SubVal(U, exact=False)


def realize_subscript(expr: ast.Expr, ref: RefSite, model: AnalysisModel) -> SubVal:
    """Reduce one subscript expression to a :class:`SubVal`."""
    if isinstance(expr, ast.IntLit):
        return SubVal(C, value=int(expr.value))
    if isinstance(expr, ast.Name):
        name = expr.ident
        g = ref.bind.get(name)
        if g is not None:
            vals = np.asarray(ref.axes[g].values, dtype=np.int64)
            return SubVal(A, g=g, vals=vals)
        if name in ref.scalars:
            return SubVal(U, exact=False)  # seq element: uniform per sweep
        if name in model.info.constants:
            return SubVal(C, value=int(model.info.constants[name]))
        if name in model.info.scalars or name in model.host_scalars:
            return SubVal(U, exact=False)  # front-end scalar: grid-uniform
        return _DATA  # parallel local / unknown: per-VP data
    if isinstance(expr, ast.Unary):
        v = realize_subscript(expr.operand, ref, model)
        if v.kind == D:
            return _DATA
        zero = SubVal(C, value=0)
        if expr.op == "-":
            return _combine("-", zero, v, expr)
        if expr.op == "+":
            return v
        if expr.op == "!":
            return _combine("==", v, zero, expr)
        if expr.op == "~":
            return _combine("-", _combine("-", zero, v, expr), SubVal(C, value=1), expr)
        return _DATA
    if isinstance(expr, ast.Binary):
        left = realize_subscript(expr.left, ref, model)
        right = realize_subscript(expr.right, ref, model)
        return _combine(expr.op, left, right, expr)
    if isinstance(expr, ast.Ternary):
        cond = realize_subscript(expr.cond, ref, model)
        if cond.kind == C and cond.exact:
            branch = expr.then if cond.value else expr.els
            return realize_subscript(branch, ref, model)
        return _DATA
    # Index / Call / Reduction / InfLit / FloatLit / ...: data-dependent
    return _DATA


def realize_site(ref: RefSite, model: AnalysisModel) -> List[SubVal]:
    return [realize_subscript(sub, ref, model) for sub in ref.node.subs]


@dataclass
class SiteVerdict:
    """Static classification of one reference site."""

    ref: RefSite
    subvals: List[SubVal]
    rc: Optional[RefClass]  # read-side verdict (None: rank mismatch)
    rc_write: Optional[RefClass]  # write-side verdict, when the site writes
    #: True when every subscript realisation is numerically trustworthy —
    #: only then does the verdict equal the runtime classifier's verdict
    exact: bool
    #: (subscript position, offending value, extent) for a proven
    #: out-of-range subscript, else None
    oob: Optional[Tuple[int, int, int]] = None
    #: verdict on the reduction axes alone, for operands the processor
    #: optimization (§4) may evaluate on the operand grid (None otherwise)
    rc_operand: Optional[RefClass] = None

    def tier(self, costs: CostTable, *, write: bool) -> Optional[str]:
        rc = self.rc_write if write else self.rc
        if rc is None:
            return None
        return decide_tier(rc, costs, write=write)


def classify_site(ref: RefSite, model: AnalysisModel) -> SiteVerdict:
    """Run the shared affine classifier on one statically realised site."""
    subvals = realize_site(ref, model)
    dims = model.array_dims(ref.node.base)
    layout = (
        model.layouts.get(ref.node.base)
        if ref.node.base in model.layouts
        else Layout(ref.node.base, dims or ())
    )
    if dims is None or len(subvals) != len(dims):
        return SiteVerdict(ref, subvals, None, None, exact=False)

    exact = all(v.exact for v in subvals)
    descs: Optional[List[Tuple]] = []
    for v in subvals:
        if v.kind == C:
            descs.append(("u", v.value))
        elif v.kind == U:
            descs.append(("u", 0))  # placeholder: uniform structure only
        elif v.kind == A:
            descs.append(("a", v.g, v.vals))
        else:
            descs = None
            break

    grid_shape = tuple(a.extent for a in ref.axes)
    axis_elems = [a.elem for a in ref.axes]
    if descs is None:
        rc = RefClass("router", detail="data-dependent subscript", axes=None)
        rc_w = RefClass("router", detail="write: data-dependent subscript", axes=None)
        return SiteVerdict(ref, subvals, rc, rc_w if ref.write else None, exact=False)

    rc = classify_affine(descs, grid_shape, axis_elems, layout)
    rc_w = (
        classify_write_affine(descs, grid_shape, axis_elems, layout)
        if ref.write
        else None
    )

    oob = None
    for a, v in enumerate(subvals):
        b = v.bounds()
        if b is None:
            continue
        lo, hi = b
        if lo < 0:
            oob = (a, lo, dims[a])
            break
        if hi >= dims[a]:
            oob = (a, hi, dims[a])
            break

    rc_operand = None
    base = ref.red_base
    if base is not None and all(v.kind != A or v.g >= base for v in subvals):
        op_descs = [
            ("a", d[1] - base, d[2]) if d[0] == "a" else d for d in descs
        ]
        rc_operand = classify_affine(
            op_descs, grid_shape[base:], axis_elems[base:], layout
        )
    return SiteVerdict(
        ref, subvals, rc, rc_w, exact=exact, oob=oob, rc_operand=rc_operand
    )


def default_costs() -> CostTable:
    return MachineConfig().costs
