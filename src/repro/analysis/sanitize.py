"""Runtime sanitizer: cross-check engine behaviour against static verdicts.

With ``REPRO_SANITIZE=1`` (or ``UCProgram(sanitize=True)``) both engines
record, per statement, the scatter index sets they build and the
communication tiers they dispatch.  This module turns the analyzer's
*exact* verdicts into claims about that record:

* a write site :func:`repro.analysis.races.injectivity` proved
  ``injective`` must never produce a duplicate flat index;
* a reference site whose every subscript realised exactly must be
  serviced only by tiers in the static verdict set — the same
  :func:`repro.interp.commtiers.decide_tier` call, fed the machine's own
  cost table, so the comparison is decision-for-decision;
* a reduction site the determinism pass proved **UC501** (commutative +
  associative, :mod:`repro.analysis.determinism`) must be insensitive to
  operand order: every observed reduction is re-executed with a seeded
  permutation of its operands (and reversed arm order) and the values
  must agree bit-for-bit.  A difference at a proven site is a hard
  failure; at a UC502/UC503 site it is the *expected* behaviour and is
  recorded as a confirming observation.

A contradiction means the analyzer and an engine disagree about the
program — a bug in one of them, never a property of the user's code —
and raises :class:`~repro.lang.errors.UCSanitizerError` as a hard
failure.

One deliberate widening: operands of reductions may be evaluated on the
*operand* grid when the processor optimization (paper §4) collapses the
parent axes (``interp/sendreduce.py``), so for in-reduction references
the claim is the union of the product-grid and operand-grid verdicts.
Inexact sites (data-dependent or value-unknown subscripts) claim
nothing: the analyzer only holds the engines to what it proved.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..interp.commtiers import decide_tier
from ..lang import ast
from ..lang.errors import UCSanitizerError
from ..mapping.locality import RefClass
from .determinism import ReductionVerdict, determinism_claims
from .races import write_claims

#: tier claim key, matching the interpreter's ``tier_log`` keying
TierKey = Tuple[int, str]  # (line, array base)
#: write claim key: line, col, array base
WriteKey = Tuple[int, int, str]


class Sanitizer:
    """Static claims plus the counters the runtime checks them against.

    One instance is shared by a program run (both engines consult the
    interpreter's ``sanitizer`` attribute), so the summary counts every
    scatter and every cross-checked tier site of the run.
    """

    def __init__(self, info, layouts) -> None:
        from .linter import build_verdicts  # lazy: linter imports races

        model, verdicts = build_verdicts(info, layouts)
        self.model = model
        self.tier_claims: Dict[TierKey, List[Tuple[RefClass, bool]]] = _tier_claims(
            verdicts
        )
        self.write_claims: Dict[WriteKey, str] = write_claims(verdicts)
        self.writes_checked = 0
        self.duplicate_writes = 0
        # reduction determinism claims (UC5xx), keyed by node identity —
        # the model walks the same AST objects the engines execute
        self.red_claims: Dict[int, ReductionVerdict] = determinism_claims(model)
        self.reductions_checked = 0
        self.reductions_confirmed = 0
        self.order_sensitivity_observed = 0
        # private stream: permutations must not consume the program RNG
        self._perm_rng = np.random.default_rng(0x5C501)

    # -- reduction order-permutation claims ---------------------------------

    def check_reduction(
        self, node, arm_values, arm_masks, reduce_axes, result
    ) -> None:
        """Re-run one observed reduction with permuted operand order.

        Called by both engines right after the combine (``$,`` excluded —
        it is order-sensitive by definition and claimed under UC504).
        The permutation is joint across arms and masks (operands keep
        their enablement) and drawn from a private seeded stream so the
        program's own RNG — and hence its fingerprint — is untouched.
        """
        verdict = self.red_claims.get(id(node))
        if verdict is None:
            return  # unmodeled site: the analyzer claims nothing
        self.reductions_checked += 1
        from ..interp import eval_expr as E

        lead = arm_values[0].ndim - len(reduce_axes)
        extent = 1
        for ax in reduce_axes:
            extent *= arm_values[0].shape[ax]
        perm = self._perm_rng.permutation(extent)

        def permuted(a):
            flat = np.ascontiguousarray(a).reshape(a.shape[:lead] + (extent,))
            return flat[..., perm].reshape(a.shape)

        order = list(range(len(arm_values)))[::-1]
        redo = E._reduce_op(
            node.op,
            [permuted(arm_values[i]) for i in order],
            [permuted(arm_masks[i]) for i in order],
            reduce_axes,
        )
        res = np.asarray(result)
        same = redo.dtype == res.dtype and np.array_equal(
            redo, res, equal_nan=True
        )
        self.note_reduction(node, verdict, same)

    def check_send_reduce(self, node, combine_at, identity, dtype, dest, vals, out) -> None:
        """The send-with-op scatter variant of :meth:`check_reduction`.

        Replays the ``ufunc.at`` combine against a fresh identity array
        with jointly permuted (destination, value) pairs.
        """
        verdict = self.red_claims.get(id(node))
        if verdict is None:
            return
        self.reductions_checked += 1
        perm = self._perm_rng.permutation(len(dest))
        redo = np.full(out.shape, identity, dtype=dtype)
        combine_at(redo, dest[perm], vals[perm])
        same = np.array_equal(redo, out, equal_nan=True)
        self.note_reduction(node, verdict, same)

    def note_reduction(self, node, verdict: ReductionVerdict, same: bool) -> None:
        """Record one permutation observation; hard-fail a broken proof."""
        if same:
            self.reductions_confirmed += 1
            return
        if verdict.code == "UC501":
            raise UCSanitizerError(
                f"sanitizer: reduction {verdict.op!r} produced a different "
                "value under permuted operand order at a site the analyzer "
                "proved commutative+associative [UC501] "
                f"({verdict.reason}) — the proof and the engine disagree",
                node.line,
                node.col,
            )
        # UC502/UC503: order sensitivity is the *claimed* behaviour —
        # the observation confirms the warning, it does not fail the run
        self.order_sensitivity_observed += 1

    # -- write-side claims --------------------------------------------------

    def record_write(self, node: ast.Index, has_dup: bool) -> None:
        """Called by both scatter paths after the single-assignment check.

        ``has_dup`` says whether the flat index vector contained a
        duplicate (benign duplicates — equal values — included: the
        injectivity claim is about the index map, not the values).
        """
        self.writes_checked += 1
        if not has_dup:
            return
        self.duplicate_writes += 1
        key = (node.line, node.col, node.base)
        if self.write_claims.get(key) == "injective":
            raise UCSanitizerError(
                f"sanitizer: scatter to {node.base!r} produced a duplicate "
                "element index at a site the analyzer proved injective "
                "(static race analysis and the engine disagree)",
                node.line,
                node.col,
            )

    # -- tier claims --------------------------------------------------------

    def cross_check(self, ip) -> Dict[str, int]:
        """Compare the run's observed tiers against the static claims.

        Raises on any contradiction; returns the summary statistics that
        ``repro run --stats`` prints.
        """
        log = getattr(ip, "tier_log", None) or {}
        costs = ip.machine.clock.costs
        enabled = ip.comm_tiers_enabled
        observed_sites = 0
        verified = 0
        contradictions: List[str] = []
        for key, observed in sorted(log.items()):
            claim = self.tier_claims.get(key)
            if claim is None:
                continue  # inexact or unclaimed site: advisory lints only
            observed_sites += 1
            expected = {
                decide_tier(rc, costs, write=w, enabled=enabled) for rc, w in claim
            }
            extra = set(observed) - expected
            if extra:
                line, base = key
                contradictions.append(
                    f"line {line}: reference to {base!r} used tier(s) "
                    f"{sorted(extra)} but the analyzer proved "
                    f"{sorted(expected)}"
                )
            else:
                verified += 1
        if contradictions:
            raise UCSanitizerError(
                "sanitizer: observed communication tiers contradict the "
                "static verdicts:\n  " + "\n  ".join(contradictions)
            )
        return {
            "writes_checked": self.writes_checked,
            "duplicate_writes": self.duplicate_writes,
            "write_sites_claimed": len(self.write_claims),
            "tier_sites_claimed": len(self.tier_claims),
            "tier_sites_observed": observed_sites,
            "tier_sites_verified": verified,
            "reduction_sites_claimed": len(self.red_claims),
            "reductions_checked": self.reductions_checked,
            "reductions_confirmed": self.reductions_confirmed,
            "order_sensitivity_observed": self.order_sensitivity_observed,
        }


def _tier_claims(verdicts) -> Dict[TierKey, List[Tuple[RefClass, bool]]]:
    """Exact static verdicts per ``tier_log`` key.

    ``tier_log`` keys by (line, base), which can merge several source
    references; a single inexact contributor poisons the whole key, so
    those keys claim nothing.  DSL-built nodes without positions (line 0)
    are skipped for the same reason — the key cannot identify a site.
    """
    claims: Dict[TierKey, List[Tuple[RefClass, bool]]] = {}
    poisoned = set()
    for v in verdicts:
        node = v.ref.node
        if node.line <= 0:
            continue
        key = (node.line, node.base)
        if not v.exact or v.rc is None or v.rc.axes is None:
            poisoned.add(key)
            continue
        pairs = claims.setdefault(key, [])
        if v.ref.read or not v.ref.write:
            pairs.append((v.rc, False))
        if v.ref.write and v.rc_write is not None:
            pairs.append((v.rc_write, True))
        if v.rc_operand is not None:
            # the processor optimization may service this reference on
            # the operand grid instead
            pairs.append((v.rc_operand, False))
    for key in poisoned:
        claims.pop(key, None)
    return claims
