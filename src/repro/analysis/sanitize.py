"""Runtime sanitizer: cross-check engine behaviour against static verdicts.

With ``REPRO_SANITIZE=1`` (or ``UCProgram(sanitize=True)``) both engines
record, per statement, the scatter index sets they build and the
communication tiers they dispatch.  This module turns the analyzer's
*exact* verdicts into claims about that record:

* a write site :func:`repro.analysis.races.injectivity` proved
  ``injective`` must never produce a duplicate flat index;
* a reference site whose every subscript realised exactly must be
  serviced only by tiers in the static verdict set — the same
  :func:`repro.interp.commtiers.decide_tier` call, fed the machine's own
  cost table, so the comparison is decision-for-decision.

A contradiction means the analyzer and an engine disagree about the
program — a bug in one of them, never a property of the user's code —
and raises :class:`~repro.lang.errors.UCSanitizerError` as a hard
failure.

One deliberate widening: operands of reductions may be evaluated on the
*operand* grid when the processor optimization (paper §4) collapses the
parent axes (``interp/sendreduce.py``), so for in-reduction references
the claim is the union of the product-grid and operand-grid verdicts.
Inexact sites (data-dependent or value-unknown subscripts) claim
nothing: the analyzer only holds the engines to what it proved.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..interp.commtiers import decide_tier
from ..lang import ast
from ..lang.errors import UCSanitizerError
from ..mapping.locality import RefClass
from .races import write_claims

#: tier claim key, matching the interpreter's ``tier_log`` keying
TierKey = Tuple[int, str]  # (line, array base)
#: write claim key: line, col, array base
WriteKey = Tuple[int, int, str]


class Sanitizer:
    """Static claims plus the counters the runtime checks them against.

    One instance is shared by a program run (both engines consult the
    interpreter's ``sanitizer`` attribute), so the summary counts every
    scatter and every cross-checked tier site of the run.
    """

    def __init__(self, info, layouts) -> None:
        from .linter import build_verdicts  # lazy: linter imports races

        model, verdicts = build_verdicts(info, layouts)
        self.model = model
        self.tier_claims: Dict[TierKey, List[Tuple[RefClass, bool]]] = _tier_claims(
            verdicts
        )
        self.write_claims: Dict[WriteKey, str] = write_claims(verdicts)
        self.writes_checked = 0
        self.duplicate_writes = 0

    # -- write-side claims --------------------------------------------------

    def record_write(self, node: ast.Index, has_dup: bool) -> None:
        """Called by both scatter paths after the single-assignment check.

        ``has_dup`` says whether the flat index vector contained a
        duplicate (benign duplicates — equal values — included: the
        injectivity claim is about the index map, not the values).
        """
        self.writes_checked += 1
        if not has_dup:
            return
        self.duplicate_writes += 1
        key = (node.line, node.col, node.base)
        if self.write_claims.get(key) == "injective":
            raise UCSanitizerError(
                f"sanitizer: scatter to {node.base!r} produced a duplicate "
                "element index at a site the analyzer proved injective "
                "(static race analysis and the engine disagree)",
                node.line,
                node.col,
            )

    # -- tier claims --------------------------------------------------------

    def cross_check(self, ip) -> Dict[str, int]:
        """Compare the run's observed tiers against the static claims.

        Raises on any contradiction; returns the summary statistics that
        ``repro run --stats`` prints.
        """
        log = getattr(ip, "tier_log", None) or {}
        costs = ip.machine.clock.costs
        enabled = ip.comm_tiers_enabled
        observed_sites = 0
        verified = 0
        contradictions: List[str] = []
        for key, observed in sorted(log.items()):
            claim = self.tier_claims.get(key)
            if claim is None:
                continue  # inexact or unclaimed site: advisory lints only
            observed_sites += 1
            expected = {
                decide_tier(rc, costs, write=w, enabled=enabled) for rc, w in claim
            }
            extra = set(observed) - expected
            if extra:
                line, base = key
                contradictions.append(
                    f"line {line}: reference to {base!r} used tier(s) "
                    f"{sorted(extra)} but the analyzer proved "
                    f"{sorted(expected)}"
                )
            else:
                verified += 1
        if contradictions:
            raise UCSanitizerError(
                "sanitizer: observed communication tiers contradict the "
                "static verdicts:\n  " + "\n  ".join(contradictions)
            )
        return {
            "writes_checked": self.writes_checked,
            "duplicate_writes": self.duplicate_writes,
            "write_sites_claimed": len(self.write_claims),
            "tier_sites_claimed": len(self.tier_claims),
            "tier_sites_observed": observed_sites,
            "tier_sites_verified": verified,
        }


def _tier_claims(verdicts) -> Dict[TierKey, List[Tuple[RefClass, bool]]]:
    """Exact static verdicts per ``tier_log`` key.

    ``tier_log`` keys by (line, base), which can merge several source
    references; a single inexact contributor poisons the whole key, so
    those keys claim nothing.  DSL-built nodes without positions (line 0)
    are skipped for the same reason — the key cannot identify a site.
    """
    claims: Dict[TierKey, List[Tuple[RefClass, bool]]] = {}
    poisoned = set()
    for v in verdicts:
        node = v.ref.node
        if node.line <= 0:
            continue
        key = (node.line, node.base)
        if not v.exact or v.rc is None or v.rc.axes is None:
            poisoned.add(key)
            continue
        pairs = claims.setdefault(key, [])
        if v.ref.read or not v.ref.write:
            pairs.append((v.rc, False))
        if v.ref.write and v.rc_write is not None:
            pairs.append((v.rc_write, True))
        if v.rc_operand is not None:
            # the processor optimization may service this reference on
            # the operand grid instead
            pairs.append((v.rc_operand, False))
    for key in poisoned:
        claims.pop(key, None)
    return claims
