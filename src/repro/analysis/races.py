"""UC1xx: par write-write races and provably bad subscripts.

The single-assignment rule (paper §3.4) says a ``par`` may write one
element twice only with identical values.  The runtime enforces it per
scatter; this pass proves it — or its violation — ahead of time.

Because every statically-realised subscript varies along at most one
grid axis (see :mod:`.staticref`), the map *grid coordinate → written
element* factorises per axis, so injectivity decomposes axis by axis:

* an axis some subscript covers injectively (distinct realised values)
  cannot collide;
* an axis of extent > 1 that no subscript varies along collapses all its
  lanes onto one element — a structural collision;
* an axis covered non-injectively collides exactly on the duplicate
  values.

A collision only violates §3.4 when the colliding lanes carry *distinct*
values, so the right-hand side is pushed through the same realisation:
uniform along the colliding axes → benign (the write is redundant, not
racy); provably distinct → UC101; not provable either way → UC102.
Distinct unguarded statements writing overlapping elements of the same
array are UC103, and a subscript that is provably out of range (which
the runtime would reject on its bounds check) is UC104.

The per-site injectivity verdicts double as the static claims the
runtime sanitizer holds both engines to: a site this pass proves
``injective`` must never produce a duplicate flat index at run time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..lang import ast
from .context import AnalysisModel, AssignSite, Axis, ConstructSite
from .diagnostics import Diagnostic
from .staticref import A, C, D, U, SiteVerdict, SubVal, realize_subscript

#: grids larger than this are not enumerated for cross-statement overlap
_ENUM_LIMIT = 1 << 16


def analyze_races(
    model: AnalysisModel, verdicts: Sequence[SiteVerdict], file: str
) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    _check_bounds(verdicts, file, diags)
    for site in model.constructs:
        if site.kind != "par":
            # solve writes each element once under its readiness masks and
            # oneof runs a single arm; §3.4 races are a par property
            continue
        _check_construct(model, site, verdicts, file, diags)
    return diags


def write_claims(verdicts: Sequence[SiteVerdict]) -> Dict[Tuple[int, int, str], str]:
    """Sanitizer claims: (line, col, base) -> 'injective' | 'collision' |
    'unknown'.  Only positions that identify a unique source node claim
    anything; a proven-injective site must never scatter a duplicate."""
    claims: Dict[Tuple[int, int, str], str] = {}
    nodes: Dict[Tuple[int, int, str], set] = {}
    for v in verdicts:
        if not v.ref.write or v.ref.node.line <= 0:
            continue
        key = (v.ref.node.line, v.ref.node.col, v.ref.node.base)
        verdict, _axes = injectivity(v.subvals, v.ref.axes)
        nodes.setdefault(key, set()).add(id(v.ref.node))
        prev = claims.get(key)
        if prev is None:
            claims[key] = verdict
        elif prev != verdict:
            claims[key] = "unknown"
    return {
        key: verdict
        for key, verdict in claims.items()
        if len(nodes[key]) == 1
    }


# ---------------------------------------------------------------------------
# injectivity
# ---------------------------------------------------------------------------


def injectivity(
    subvals: Sequence[SubVal], axes: Sequence[Axis]
) -> Tuple[str, List[int]]:
    """('injective' | 'collision' | 'unknown', colliding grid axes)."""
    has_data = any(v.kind == D for v in subvals)
    colliding: List[int] = []
    unknown = False
    for g, axis in enumerate(axes):
        if axis.extent <= 1:
            continue
        varying = [v for v in subvals if v.kind == A and v.g == g]
        exact = [v for v in varying if v.exact]
        # one exactly-known injective component makes the whole tuple
        # injective along this axis
        if any(np.unique(v.vals).size == v.vals.size for v in exact):
            continue
        if len(exact) > 1:
            stacked = np.stack([v.vals for v in exact])
            if np.unique(stacked, axis=1).shape[1] == stacked.shape[1]:
                continue
        if has_data or len(exact) != len(varying):
            # a data-dependent or value-unknown subscript may still
            # separate the lanes — no verdict either way
            unknown = True
            continue
        colliding.append(g)
    if colliding:
        return "collision", colliding
    if unknown:
        return "unknown", []
    return "injective", []


# ---------------------------------------------------------------------------
# diagnostics
# ---------------------------------------------------------------------------


def _check_bounds(
    verdicts: Sequence[SiteVerdict], file: str, diags: List[Diagnostic]
) -> None:
    seen = set()
    for v in verdicts:
        if v.oob is None:
            continue
        node = v.ref.node
        key = (node.line, node.col, node.base, v.oob)
        if key in seen:
            continue
        seen.add(key)
        a, value, extent = v.oob
        diags.append(
            Diagnostic(
                code="UC104",
                severity="error" if not v.ref.guarded else "warning",
                message=(
                    f"subscript {a} of {node.base!r} out of range "
                    f"(value {value}, extent {extent})"
                ),
                line=node.line,
                col=node.col,
                file=file,
                hint=(
                    "every active lane must index inside the array; shrink "
                    "the index set or guard the statement with an st predicate"
                ),
            )
        )


def _check_construct(
    model: AnalysisModel,
    site: ConstructSite,
    verdicts: Sequence[SiteVerdict],
    file: str,
    diags: List[Diagnostic],
) -> None:
    by_node = {id(v.ref.node): v for v in verdicts if v.ref.write}
    enumerable: List[Tuple[AssignSite, SiteVerdict]] = []
    for asn in site.assigns:
        target = asn.assign.target
        if isinstance(target, ast.Name):
            _check_scalar_target(model, asn, target, file, diags)
            continue
        if not isinstance(target, ast.Index):
            continue
        v = by_node.get(id(target))
        if v is None:
            continue
        _check_self_collision(model, asn, v, file, diags)
        if not asn.guarded and all(s.exact for s in v.subvals):
            enumerable.append((asn, v))
    _check_cross_statement(model, enumerable, file, diags)


def _check_self_collision(
    model: AnalysisModel,
    asn: AssignSite,
    v: SiteVerdict,
    file: str,
    diags: List[Diagnostic],
) -> None:
    target = asn.assign.target
    verdict, colliding = injectivity(v.subvals, asn.axes)
    if verdict == "injective":
        return
    if verdict == "unknown":
        diags.append(
            Diagnostic(
                code="UC102",
                severity="warning" if not asn.guarded else "info",
                message=(
                    f"cannot prove single assignment for write to "
                    f"{target.base!r} (subscripts are not statically "
                    "analysable)"
                ),
                line=target.line,
                col=target.col,
                file=file,
                hint=(
                    "the runtime enforces the rule per scatter; if collisions "
                    "are intended, make the non-determinism explicit with the "
                    "$, operator (paper §3.4)"
                ),
            )
        )
        return
    # structural collision: decide whether the colliding lanes agree
    rhs = realize_subscript(asn.assign.value, asn, model)
    worst = "benign"
    for g in colliding:
        worst = _max_verdict(worst, _rhs_verdict(rhs, g, v.subvals))
        if worst == "definite":
            break
    if worst == "benign":
        return
    elems = ", ".join(repr(asn.axes[g].elem) for g in colliding)
    lanes = " x ".join(str(asn.axes[g].extent) for g in colliding)
    if worst == "definite":
        diags.append(
            Diagnostic(
                code="UC101",
                severity="error" if not asn.guarded else "warning",
                message=(
                    f"par assigns multiple distinct values to {target.base!r}: "
                    f"grid axis {elems} ({lanes} lanes) collapses onto one "
                    "element while the value varies along it"
                ),
                line=target.line,
                col=target.col,
                file=file,
                hint=(
                    f"subscript {target.base!r} with {elems}, or make the "
                    "non-determinism explicit with the $, operator (paper §3.4)"
                ),
            )
        )
        return
    diags.append(
        Diagnostic(
            code="UC102",
            severity="warning" if not asn.guarded else "info",
            message=(
                f"possible write-write race on {target.base!r}: lanes along "
                f"{elems} write the same element and the value cannot be "
                "proven equal"
            ),
            line=target.line,
            col=target.col,
            file=file,
            hint=f"subscript {target.base!r} with {elems} if each lane owns one element",
        )
    )


def _rhs_verdict(rhs: SubVal, g: int, target_subs: Sequence[SubVal]) -> str:
    """Do colliding lanes along axis ``g`` carry equal values?"""
    if rhs.kind in (C, U):
        return "benign"  # grid-uniform, even when the value is unknown
    if rhs.kind == A:
        if rhs.g != g:
            return "benign"  # constant along the colliding axis
        if not rhs.exact:
            return "possible"
        # duplicate-collision axis: lanes with equal target values must
        # carry equal RHS values; a fully-collapsed axis has one group
        groups: Dict[Tuple, List[int]] = {}
        cols = [v for v in target_subs if v.kind == A and v.g == g and v.exact]
        n = len(rhs.vals)
        for k in range(n):
            key = tuple(int(v.vals[k]) for v in cols)
            groups.setdefault(key, []).append(k)
        for members in groups.values():
            vals = {int(rhs.vals[k]) for k in members}
            if len(vals) > 1:
                return "definite"
        return "benign"
    return "possible"


def _max_verdict(a: str, b: str) -> str:
    order = {"benign": 0, "possible": 1, "definite": 2}
    return a if order[a] >= order[b] else b


def _check_scalar_target(
    model: AnalysisModel,
    asn: AssignSite,
    target: ast.Name,
    file: str,
    diags: List[Diagnostic],
) -> None:
    name = target.ident
    if name not in model.info.scalars and name not in model.host_scalars:
        return  # element bindings / parallel locals have their own rules
    rhs = realize_subscript(asn.assign.value, asn, model)
    if rhs.kind in (C, U):
        return
    if rhs.kind == A and rhs.exact and np.unique(rhs.vals).size > 1:
        diags.append(
            Diagnostic(
                code="UC101",
                severity="error" if not asn.guarded else "warning",
                message=(
                    f"par assigns multiple distinct values to scalar {name!r} "
                    f"(the value varies along {asn.axes[rhs.g].elem!r})"
                ),
                line=target.line,
                col=target.col,
                file=file,
                hint=(
                    "reduce the grid value first ($+, $min, ...) or make the "
                    "choice explicit with the $, operator"
                ),
            )
        )
        return
    if rhs.kind == A and rhs.exact:
        return  # varies along an axis but with a single realised value
    diags.append(
        Diagnostic(
            code="UC102",
            severity="warning" if not asn.guarded else "info",
            message=(
                f"possible multiple assignment to scalar {name!r}: all "
                "enabled lanes must agree on the value at run time"
            ),
            line=target.line,
            col=target.col,
            file=file,
            hint="reduce the grid value first ($+, $min, ...)",
        )
    )


def _check_cross_statement(
    model: AnalysisModel,
    enumerable: List[Tuple[AssignSite, SiteVerdict]],
    file: str,
    diags: List[Diagnostic],
) -> None:
    """UC103: distinct unguarded statements whose write sets overlap."""
    sets: List[Tuple[AssignSite, SiteVerdict, Optional[frozenset]]] = []
    for asn, v in enumerable:
        sets.append((asn, v, _element_set(asn, v)))
    for i in range(len(sets)):
        for j in range(i + 1, len(sets)):
            a_asn, a_v, a_set = sets[i]
            b_asn, b_v, b_set = sets[j]
            a_t, b_t = a_asn.assign.target, b_asn.assign.target
            if a_t.base != b_t.base or a_t is b_t:
                continue
            if a_set is None or b_set is None or not (a_set & b_set):
                continue
            if _same_constant_rhs(model, a_asn, b_asn):
                continue
            diags.append(
                Diagnostic(
                    code="UC103",
                    severity="warning",
                    message=(
                        f"writes to {b_t.base!r} overlap with the assignment "
                        f"at line {a_t.line} on {len(a_set & b_set)} "
                        "element(s)"
                    ),
                    line=b_t.line,
                    col=b_t.col,
                    file=file,
                    hint=(
                        "guard the two statements with disjoint st "
                        "predicates, or merge them into one assignment"
                    ),
                )
            )


def _element_set(asn: AssignSite, v: SiteVerdict) -> Optional[frozenset]:
    """All element tuples the write touches, or None when unenumerable."""
    shape = tuple(a.extent for a in asn.axes)
    size = int(np.prod(shape)) if shape else 0
    if not size or size > _ENUM_LIMIT:
        return None
    cols = []
    for sub in v.subvals:
        if sub.kind == C:
            cols.append(np.full(size, sub.value, dtype=np.int64))
        elif sub.kind == A and sub.exact:
            view = [1] * len(shape)
            view[sub.g] = shape[sub.g]
            cols.append(
                np.broadcast_to(sub.vals.reshape(view), shape).reshape(-1)
            )
        else:
            return None
    if not cols:
        return None
    return frozenset(zip(*(c.tolist() for c in cols)))


def _same_constant_rhs(
    model: AnalysisModel, a: AssignSite, b: AssignSite
) -> bool:
    if a.assign.op or b.assign.op:
        return False
    ra = realize_subscript(a.assign.value, a, model)
    rb = realize_subscript(b.assign.value, b, model)
    return ra.kind == C and rb.kind == C and ra.exact and rb.exact and ra.value == rb.value
