"""Whole-program static analysis for UC programs (``repro lint``).

The analyzer proves — ahead of any run — the properties the paper's
runtime enforces dynamically: single assignment under ``par`` (§3.4),
properness of ``solve`` equation sets (§3.6), and the communication
tier every remote reference will be serviced by (§4).  Verdicts are
surfaced as :class:`Diagnostic` objects with stable codes (UC1xx races,
UC2xx solve, UC3xx communication, UC4xx hygiene, UC5xx determinism
envelopes), and the exact subset doubles as the claim set the runtime
sanitizer (:class:`~repro.analysis.sanitize.Sanitizer`,
``REPRO_SANITIZE=1``) holds both engines to.  The UC5xx reduction
verdicts (:func:`~repro.analysis.determinism.determinism_claims`) are
additionally the runtime's reorder-legality oracle for batched blocked
reductions and cross-shard pre-combining.
"""

from .determinism import ReductionVerdict, determinism_claims
from .diagnostics import CODES, DETAILS, Diagnostic, LintReport, explain
from .linter import build_verdicts, lint_program
from .sanitize import Sanitizer

__all__ = [
    "CODES",
    "DETAILS",
    "Diagnostic",
    "LintReport",
    "ReductionVerdict",
    "Sanitizer",
    "build_verdicts",
    "determinism_claims",
    "explain",
    "lint_program",
]
