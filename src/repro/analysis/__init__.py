"""Whole-program static analysis for UC programs (``repro lint``).

The analyzer proves — ahead of any run — the properties the paper's
runtime enforces dynamically: single assignment under ``par`` (§3.4),
properness of ``solve`` equation sets (§3.6), and the communication
tier every remote reference will be serviced by (§4).  Verdicts are
surfaced as :class:`Diagnostic` objects with stable codes (UC1xx races,
UC2xx solve, UC3xx communication, UC4xx hygiene), and the exact subset
doubles as the claim set the runtime sanitizer
(:class:`~repro.analysis.sanitize.Sanitizer`, ``REPRO_SANITIZE=1``)
holds both engines to.
"""

from .diagnostics import CODES, Diagnostic, LintReport
from .linter import build_verdicts, lint_program
from .sanitize import Sanitizer

__all__ = [
    "CODES",
    "Diagnostic",
    "LintReport",
    "Sanitizer",
    "build_verdicts",
    "lint_program",
]
