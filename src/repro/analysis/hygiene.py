"""UC4xx: hygiene — unused index sets, shadowed elements, dead arms."""

from __future__ import annotations

from typing import List

from ..lang import ast
from ..lang.semantics import _ConstEvaluator
from .context import AnalysisModel
from .diagnostics import Diagnostic


def analyze_hygiene(model: AnalysisModel, file: str) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    _unused_sets(model, file, diags)
    _shadows(model, file, diags)
    _dead_arms(model, file, diags)
    return diags


def _unused_sets(model: AnalysisModel, file: str, diags: List[Diagnostic]) -> None:
    for decl in model.set_decls:
        if decl.set_name in model.used_sets:
            continue
        diags.append(
            Diagnostic(
                code="UC401",
                severity="warning",
                message=(
                    f"index set {decl.set_name!r} (element "
                    f"{decl.elem_name!r}) is never used"
                ),
                line=decl.line,
                col=decl.col,
                file=file,
                hint="remove the declaration, or use the set in a construct",
            )
        )


def _shadows(model: AnalysisModel, file: str, diags: List[Diagnostic]) -> None:
    for stmt, elem in model.shadows:
        diags.append(
            Diagnostic(
                code="UC402",
                severity="info",
                message=(
                    f"element {elem!r} re-binds a name already bound in an "
                    "enclosing construct"
                ),
                line=stmt.line,
                col=stmt.col,
                file=file,
                hint=(
                    "the inner binding wins inside this construct; rename "
                    "one of the elements if both values are needed"
                ),
            )
        )


def _dead_arms(model: AnalysisModel, file: str, diags: List[Diagnostic]) -> None:
    consts = _ConstEvaluator(model.info.constants)
    for site in model.constructs:
        if site.kind == "solve":
            continue  # constant solve predicates are UC203
        for block in site.stmt.blocks:
            if block.pred is None:
                continue
            try:
                value = consts.eval(block.pred)
            except Exception:
                continue
            if value == 0:
                diags.append(
                    Diagnostic(
                        code="UC403",
                        severity="warning",
                        message=(
                            f"'{site.kind}' arm is dead: its st predicate is "
                            "constantly false"
                        ),
                        line=block.pred.line,
                        col=block.pred.col,
                        file=file,
                        hint="remove the arm or fix the predicate",
                    )
                )
