"""``lint_program``: the programmatic whole-program analyzer entry.

Accepts UC source text, an already-parsed :class:`~repro.lang.ast.Program`
(what the embedded DSL builds) or a constructed
:class:`~repro.interp.program.UCProgram`, and returns a
:class:`~repro.analysis.diagnostics.LintReport`.  Front-end failures are
not raised — a syntax error becomes UC001 and a semantic error UC002, so
``repro lint`` can report them with the same machinery.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..lang import analyze, ast, parse_program
from ..lang.errors import UCSemanticError, UCSyntaxError
from ..machine.config import CostTable
from ..mapping.maps import build_layouts
from .commlints import analyze_comm
from .context import AnalysisModel, build_model
from .determinism import analyze_determinism
from .diagnostics import Diagnostic, LintReport
from .hygiene import analyze_hygiene
from .races import analyze_races
from .solvechecks import analyze_solves
from .staticref import SiteVerdict, classify_site, default_costs


def lint_program(
    source: Union[str, ast.Program, "object"],
    *,
    defines: Optional[Dict[str, int]] = None,
    apply_maps: bool = True,
    filename: str = "<program>",
    costs: Optional[CostTable] = None,
) -> LintReport:
    """Run every static pass over one program; never raises on bad input."""
    report = LintReport(file=filename)
    try:
        info, layouts = _front_end(source, defines, apply_maps)
    except UCSyntaxError as exc:
        report.add(
            Diagnostic(
                code="UC001",
                severity="error",
                message=exc.message,
                line=exc.line or 0,
                col=exc.col or 0,
                file=filename,
            )
        )
        return report
    except UCSemanticError as exc:
        report.add(
            Diagnostic(
                code="UC002",
                severity="error",
                message=exc.message,
                line=exc.line or 0,
                col=exc.col or 0,
                file=filename,
            )
        )
        return report

    model, verdicts = build_verdicts(info, layouts)
    table = costs if costs is not None else default_costs()
    report.extend(analyze_races(model, verdicts, filename))
    report.extend(analyze_solves(model, filename))
    report.extend(analyze_comm(model, verdicts, table, filename))
    report.extend(analyze_hygiene(model, filename))
    report.extend(analyze_determinism(model, filename))
    report.sort()
    return report


def build_verdicts(info, layouts):
    """(model, per-reference static verdicts) — shared with the sanitizer."""
    model = build_model(info, layouts)
    verdicts: List[SiteVerdict] = [classify_site(ref, model) for ref in model.refs]
    return model, verdicts


def _front_end(source, defines, apply_maps):
    if isinstance(source, ast.Program):
        info = analyze(source, dict(defines or {}))
        return info, build_layouts(info, apply_maps=apply_maps)
    if isinstance(source, str):
        program = parse_program(source)
        info = analyze(program, dict(defines or {}))
        return info, build_layouts(info, apply_maps=apply_maps)
    info = getattr(source, "info", None)
    layouts = getattr(source, "layouts", None)
    if info is None or layouts is None:
        raise TypeError(
            "lint_program expects UC source text, an ast.Program or a UCProgram"
        )
    return info, layouts
