"""The analysis walker: one traversal, one model, many passes.

Walks a checked program exactly the way the interpreter executes it —
``par``/``solve``/``oneof`` (and reductions) append grid axes, ``seq``
binds its elements as run-time scalars, inner bindings shadow outer ones
— and records every array reference, every assignment inside a parallel
construct and every construct site together with the grid context in
force at that point.  The race / solve / communication / hygiene passes
all consume this one :class:`AnalysisModel`, so they agree with each
other and with the runtime classifiers about what the grid looks like.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from ..lang import ast
from ..lang.errors import UCSemanticError
from ..lang.scope import IndexSetValue
from ..lang.semantics import ProgramInfo, _ConstEvaluator
from ..mapping.layout import LayoutTable


@dataclass(frozen=True)
class Axis:
    """One grid axis: the bound element, its set and the element values."""

    elem: str
    set_name: str
    values: Tuple[int, ...]

    @property
    def extent(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class _State:
    """Walker state at one point of the program."""

    axes: Tuple[Axis, ...] = ()
    #: element identifier -> grid axis it is currently bound to
    bind: Dict[str, int] = field(default_factory=dict)
    #: seq-bound elements (run-time scalars): element -> set name
    scalars: Dict[str, str] = field(default_factory=dict)
    #: True when a mask / condition / iteration count may exclude lanes
    guarded: bool = False
    construct: Optional["ConstructSite"] = None
    #: grid rank at entry of the outermost enclosing reduction (None when
    #: not inside one) — the processor optimization (§4) may re-evaluate
    #: reduction operands on the reduction axes alone
    red_base: Optional[int] = None


@dataclass
class RefSite:
    """One array reference inside a parallel grid."""

    node: ast.Index
    write: bool
    read: bool  # op-assign targets are read *and* written
    axes: Tuple[Axis, ...]
    bind: Dict[str, int]
    scalars: Dict[str, str]
    guarded: bool
    construct: Optional["ConstructSite"]
    #: see _State.red_base
    red_base: Optional[int] = None


@dataclass
class AssignSite:
    """One assignment expression inside a parallel construct."""

    assign: ast.Assign
    axes: Tuple[Axis, ...]
    bind: Dict[str, int]
    scalars: Dict[str, str]
    guarded: bool
    construct: "ConstructSite"


@dataclass
class ReductionSite:
    """One ``$op(...)`` reduction with the grid context around it.

    ``axes`` is the full inner grid (outer construct axes plus the
    reduction's own), exactly the grid both engines evaluate the arms
    on; ``reduce_axes`` is the suffix the reduction collapses.  The
    determinism pass (UC5xx) classifies each site into an envelope and
    the runtime consults the verdicts as its reordering legality oracle.
    """

    node: ast.Reduction
    axes: Tuple[Axis, ...]
    reduce_axes: Tuple[Axis, ...]
    bind: Dict[str, int]
    scalars: Dict[str, str]
    guarded: bool
    construct: Optional["ConstructSite"]


@dataclass
class ConstructSite:
    """One ``par``/``solve``/``oneof`` construct with its full grid."""

    stmt: ast.UCStmt
    axes: Tuple[Axis, ...]  # outer axes + this construct's own
    bind: Dict[str, int]
    scalars: Dict[str, str]
    guarded: bool
    assigns: List[AssignSite] = field(default_factory=list)

    @property
    def kind(self) -> str:
        return self.stmt.kind


@dataclass
class AnalysisModel:
    """Everything the lint passes need, gathered in one walk."""

    info: ProgramInfo
    layouts: LayoutTable
    refs: List[RefSite] = field(default_factory=list)
    constructs: List[ConstructSite] = field(default_factory=list)
    reductions: List[ReductionSite] = field(default_factory=list)
    #: every index-set declaration seen (top-level and block-local)
    set_decls: List[ast.IndexSetDecl] = field(default_factory=list)
    used_sets: Set[str] = field(default_factory=set)
    #: (construct stmt, element) pairs where a binding hid an outer one
    shadows: List[Tuple[ast.UCStmt, str]] = field(default_factory=list)
    #: block-local arrays with constant dims (lookups fall back here)
    local_arrays: Dict[str, Tuple[str, Tuple[int, ...]]] = field(default_factory=dict)
    #: scalar variables declared in host context (grid-uniform at run time)
    host_scalars: Set[str] = field(default_factory=set)
    #: scalar variables declared inside a grid (per-VP parallel locals)
    vp_locals: Set[str] = field(default_factory=set)
    #: declared scalar name -> ctype (globals and block locals alike)
    scalar_types: Dict[str, str] = field(default_factory=dict)

    def array_dims(self, name: str) -> Optional[Tuple[int, ...]]:
        entry = self.info.arrays.get(name) or self.local_arrays.get(name)
        return entry[1] if entry is not None else None

    def is_array(self, name: str) -> bool:
        return name in self.info.arrays or name in self.local_arrays


def build_model(info: ProgramInfo, layouts: LayoutTable) -> AnalysisModel:
    """Walk the program once and return the shared analysis model."""
    model = AnalysisModel(info=info, layouts=layouts)
    model.scalar_types.update(info.scalars)
    walker = _Walker(model)
    program = info.program
    for decl in program.decls:
        if isinstance(decl, ast.IndexSetDecl):
            model.set_decls.append(decl)
            if decl.spec is not None and decl.spec.kind == "alias":
                model.used_sets.add(decl.spec.alias)
    for section in program.maps:
        model.used_sets.update(section.index_sets)
        for mdecl in section.decls:
            model.used_sets.update(mdecl.index_sets)
    host = _State()
    if program.main is not None:
        walker.stmt(program.main, host)
    for func in program.funcs:
        walker.stmt(func.body, host)
    return model


class _Walker:
    def __init__(self, model: AnalysisModel) -> None:
        self.model = model
        self.info = model.info
        #: index sets in scope (top-level + block-local declarations)
        self.sets: Dict[str, IndexSetValue] = dict(model.info.index_sets)
        self.consts = _ConstEvaluator(model.info.constants)

    # -- statements ------------------------------------------------------------

    def stmt(self, s: ast.Stmt, st: _State) -> None:
        if isinstance(s, ast.Block):
            for child in s.stmts:
                self.stmt(child, st)
        elif isinstance(s, ast.DeclGroup):
            for child in s.decls:
                self.stmt(child, st)
        elif isinstance(s, ast.VarDecl):
            self._var_decl(s, st)
        elif isinstance(s, ast.IndexSetDecl):
            self._set_decl(s)
        elif isinstance(s, ast.ExprStmt):
            self.expr(s.expr, st)
        elif isinstance(s, ast.If):
            self.expr(s.cond, st)
            inner = replace(st, guarded=True)
            self.stmt(s.then, inner)
            if s.els is not None:
                self.stmt(s.els, inner)
        elif isinstance(s, ast.While):
            self.expr(s.cond, st)
            self.stmt(s.body, replace(st, guarded=True))
        elif isinstance(s, ast.DoWhile):
            # a do-while body runs at least once: keep the outer guard
            self.stmt(s.body, st)
            self.expr(s.cond, st)
        elif isinstance(s, ast.For):
            for e in (s.init, s.cond, s.step):
                if e is not None:
                    self.expr(e, st)
            self.stmt(s.body, replace(st, guarded=True))
        elif isinstance(s, ast.Return):
            if s.value is not None:
                self.expr(s.value, st)
        elif isinstance(s, ast.UCStmt):
            self._construct(s, st)
        # EmptyStmt / Break / Continue: nothing to record

    def _var_decl(self, s: ast.VarDecl, st: _State) -> None:
        if not s.dims:
            (self.model.vp_locals if st.axes else self.model.host_scalars).add(s.name)
            self.model.scalar_types.setdefault(s.name, s.ctype)
        if s.dims:
            try:
                dims = tuple(self.consts.eval(d) for d in s.dims)
            except UCSemanticError:
                dims = None
            if dims is not None and s.name not in self.info.arrays:
                self.model.local_arrays[s.name] = (s.ctype, dims)
        if s.init is not None:
            self.expr(s.init, st)

    def _set_decl(self, s: ast.IndexSetDecl) -> None:
        self.model.set_decls.append(s)
        spec = s.spec
        try:
            if spec.kind == "range":
                lo, hi = self.consts.eval(spec.lo), self.consts.eval(spec.hi)
                values: Tuple[int, ...] = tuple(range(lo, hi + 1))
            elif spec.kind == "listing":
                values = tuple(self.consts.eval(item) for item in spec.items)
            else:
                self.model.used_sets.add(spec.alias)
                base = self.sets.get(spec.alias)
                if base is None:
                    return
                values = base.values
        except UCSemanticError:
            return
        self.sets[s.set_name] = IndexSetValue(s.set_name, s.elem_name, values)

    def _construct(self, stmt: ast.UCStmt, st: _State) -> None:
        self.model.used_sets.update(stmt.index_sets)
        if stmt.kind == "seq":
            bind = dict(st.bind)
            scalars = dict(st.scalars)
            for name in stmt.index_sets:
                isv = self.sets.get(name)
                if isv is None:
                    continue
                if isv.elem_name in bind or isv.elem_name in scalars:
                    self.model.shadows.append((stmt, isv.elem_name))
                scalars[isv.elem_name] = name
                bind.pop(isv.elem_name, None)
            inner = replace(st, bind=bind, scalars=scalars)
            self._arms(stmt, inner, arm_guard=lambda blk: blk.pred is not None)
            return

        # par / solve / oneof (and the iterating * variants): the grid is
        # extended exactly like GridContext.extend — axes are appended and
        # a rebound element simply points at its newest axis
        axes = list(st.axes)
        bind = dict(st.bind)
        scalars = dict(st.scalars)
        for name in stmt.index_sets:
            isv = self.sets.get(name)
            if isv is None:
                continue
            if isv.elem_name in bind or isv.elem_name in scalars:
                self.model.shadows.append((stmt, isv.elem_name))
            bind[isv.elem_name] = len(axes)
            axes.append(Axis(isv.elem_name, name, tuple(isv.values)))
            scalars.pop(isv.elem_name, None)
        site = ConstructSite(
            stmt=stmt,
            axes=tuple(axes),
            bind=bind,
            scalars=scalars,
            guarded=st.guarded,
        )
        self.model.constructs.append(site)
        inner = _State(tuple(axes), bind, scalars, st.guarded, site)
        # only a plain par's unconditional arm runs unmasked: solve masks
        # by readiness, oneof runs one random arm, * variants iterate
        always_masked = stmt.star or stmt.kind in ("solve", "oneof")
        self._arms(
            stmt, inner, arm_guard=lambda blk: always_masked or blk.pred is not None
        )

    def _arms(self, stmt: ast.UCStmt, inner: _State, arm_guard) -> None:
        for block in stmt.blocks:
            if block.pred is not None:
                self.expr(block.pred, inner)
            guarded = inner.guarded or arm_guard(block)
            self.stmt(block.stmt, replace(inner, guarded=guarded))
        if stmt.others is not None:
            self.stmt(stmt.others, replace(inner, guarded=True))

    # -- expressions -----------------------------------------------------------

    def expr(self, e: ast.Expr, st: _State) -> None:
        if isinstance(e, ast.Index):
            self._ref(e, st, write=False, read=True)
            for sub in e.subs:
                self.expr(sub, st)
        elif isinstance(e, ast.Unary):
            self.expr(e.operand, st)
        elif isinstance(e, ast.Binary):
            self.expr(e.left, st)
            if e.op in ("&&", "||"):
                # the right side only evaluates where the left leaves it live
                self.expr(e.right, replace(st, guarded=True))
            else:
                self.expr(e.right, st)
        elif isinstance(e, ast.Ternary):
            self.expr(e.cond, st)
            inner = replace(st, guarded=True)
            self.expr(e.then, inner)
            self.expr(e.els, inner)
        elif isinstance(e, ast.Call):
            for a in e.args:
                self.expr(a, st)
        elif isinstance(e, ast.Assign):
            self._assign(e, st)
        elif isinstance(e, ast.IncDec):
            one = ast.IntLit(line=e.line, col=e.col, value=1)
            op = "+" if e.op == "++" else "-"
            self._assign(
                ast.Assign(line=e.line, col=e.col, target=e.target, op=op, value=one),
                st,
            )
        elif isinstance(e, ast.Reduction):
            self._reduction(e, st)
        # literals / names carry no reference structure

    def _assign(self, e: ast.Assign, st: _State) -> None:
        if st.construct is not None and st.axes:
            st.construct.assigns.append(
                AssignSite(
                    assign=e,
                    axes=st.axes,
                    bind=dict(st.bind),
                    scalars=dict(st.scalars),
                    guarded=st.guarded,
                    construct=st.construct,
                )
            )
        if isinstance(e.target, ast.Index):
            self._ref(e.target, st, write=True, read=bool(e.op))
            for sub in e.target.subs:
                self.expr(sub, st)
        self.expr(e.value, st)

    def _reduction(self, e: ast.Reduction, st: _State) -> None:
        self.model.used_sets.update(e.index_sets)
        axes = list(st.axes)
        bind = dict(st.bind)
        scalars = dict(st.scalars)
        for name in e.index_sets:
            isv = self.sets.get(name)
            if isv is None:
                continue
            if isv.elem_name in bind or isv.elem_name in scalars:
                self.model.shadows.append((e, isv.elem_name))  # type: ignore[arg-type]
            bind[isv.elem_name] = len(axes)
            axes.append(Axis(isv.elem_name, name, tuple(isv.values)))
            scalars.pop(isv.elem_name, None)
        red_base = st.red_base if st.red_base is not None else len(st.axes)
        inner = _State(
            tuple(axes), bind, scalars, st.guarded, st.construct, red_base
        )
        self.model.reductions.append(
            ReductionSite(
                node=e,
                axes=tuple(axes),
                reduce_axes=tuple(axes[len(st.axes):]),
                bind=dict(bind),
                scalars=dict(scalars),
                guarded=st.guarded,
                construct=st.construct,
            )
        )
        for arm in e.arms:
            if arm.pred is not None:
                self.expr(arm.pred, inner)
            guarded = inner.guarded or arm.pred is not None
            self.expr(arm.expr, replace(inner, guarded=guarded))
        if e.others is not None:
            self.expr(e.others, replace(inner, guarded=True))

    def _ref(self, node: ast.Index, st: _State, *, write: bool, read: bool) -> None:
        if not st.axes or not self.model.is_array(node.base):
            return
        self.model.refs.append(
            RefSite(
                node=node,
                write=write,
                read=read,
                axes=st.axes,
                bind=dict(st.bind),
                scalars=dict(st.scalars),
                guarded=st.guarded,
                construct=st.construct,
                red_base=st.red_base,
            )
        )
