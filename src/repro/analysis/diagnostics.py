"""The structured diagnostic model behind ``repro lint``.

Every finding the analyzer can produce is a :class:`Diagnostic` with a
stable code, a severity, a source position and (where the analysis can
compute one) a concrete fix-it hint.  Codes are grouped by area:

========  ==================================================================
UC0xx     front-end failures surfaced as diagnostics (syntax / semantics)
UC1xx     par races — violations of the single-assignment rule (§3.4)
UC2xx     solve convergence — proper-equation checks (§3.6)
UC3xx     communication tiers — references the router must service (§4)
UC4xx     hygiene — unused index sets, shadowing, dead branches
========  ==================================================================

The full table lives in ``docs/ANALYSIS.md``.  :class:`LintReport`
aggregates the diagnostics of one program and knows how to render itself
as human-readable text or JSON and how to map onto a process exit code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional

#: severity order, least to most severe
SEVERITIES = ("info", "warning", "error")

#: code -> short title (the one-line meaning; details in docs/ANALYSIS.md)
CODES = {
    "UC001": "syntax error",
    "UC002": "semantic error",
    "UC101": "par write-write race (distinct values proven)",
    "UC102": "possible par write-write race",
    "UC103": "overlapping writes from distinct par statements",
    "UC104": "subscript provably out of range",
    "UC201": "solve dependence cycle (not forward-substitutable)",
    "UC202": "unreachable 'others' arm",
    "UC203": "statically-constant 'st' predicate in solve",
    "UC301": "router-tier reference",
    "UC302": "spread-tier reference",
    "UC303": "NEWS-shift reference",
    "UC304": "broadcast reference",
    "UC305": "cross-shard reference under the derived placement",
    "UC401": "unused index set",
    "UC402": "element binding shadows an outer binding",
    "UC403": "dead construct arm (predicate constant false)",
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str  # stable code, e.g. 'UC101'
    severity: str  # 'error' | 'warning' | 'info'
    message: str
    line: int = 0
    col: int = 0
    file: str = "<program>"
    hint: str = ""  # fix-it suggestion, empty when none applies

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:  # pragma: no cover - programmer error
            raise ValueError(f"bad severity {self.severity!r}")
        if self.code not in CODES:  # pragma: no cover - programmer error
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def render(self) -> str:
        text = (
            f"{self.file}:{self.line}:{self.col}: "
            f"{self.severity}: {self.code}: {self.message}"
        )
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class LintReport:
    """All diagnostics for one linted program."""

    file: str = "<program>"
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags) -> None:
        self.diagnostics.extend(diags)

    def sort(self) -> None:
        """Stable source order: position first, then code."""
        self.diagnostics.sort(key=lambda d: (d.line, d.col, d.code))

    # -- queries ---------------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    def exit_code(self, *, werror: bool = False) -> int:
        """CLI convention: 1 when errors (or warnings under --werror)."""
        if self.errors:
            return 1
        if werror and self.warnings:
            return 1
        return 0

    # -- rendering -------------------------------------------------------------

    def render_text(self) -> str:
        lines = [d.render() for d in self.diagnostics]
        lines.append(
            f"{self.file}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), "
            f"{len(self.diagnostics) - len(self.errors) - len(self.warnings)} note(s)"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "file": self.file,
                "diagnostics": [d.to_json() for d in self.diagnostics],
                "errors": len(self.errors),
                "warnings": len(self.warnings),
            },
            indent=2,
        )
