"""The structured diagnostic model behind ``repro lint``.

Every finding the analyzer can produce is a :class:`Diagnostic` with a
stable code, a severity, a source position and (where the analysis can
compute one) a concrete fix-it hint.  Codes are grouped by area:

========  ==================================================================
UC0xx     front-end failures surfaced as diagnostics (syntax / semantics)
UC1xx     par races — violations of the single-assignment rule (§3.4)
UC2xx     solve convergence — proper-equation checks (§3.6)
UC3xx     communication tiers — references the router must service (§4)
UC4xx     hygiene — unused index sets, shadowing, dead branches
UC5xx     determinism envelopes — reduction commutativity & order proofs
========  ==================================================================

The full table lives in ``docs/ANALYSIS.md``.  :class:`LintReport`
aggregates the diagnostics of one program and knows how to render itself
as human-readable text or JSON and how to map onto a process exit code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional

#: severity order, least to most severe
SEVERITIES = ("info", "warning", "error")

#: code -> short title (the one-line meaning; details in docs/ANALYSIS.md)
CODES = {
    "UC001": "syntax error",
    "UC002": "semantic error",
    "UC101": "par write-write race (distinct values proven)",
    "UC102": "possible par write-write race",
    "UC103": "overlapping writes from distinct par statements",
    "UC104": "subscript provably out of range",
    "UC201": "solve dependence cycle (not forward-substitutable)",
    "UC202": "unreachable 'others' arm",
    "UC203": "statically-constant 'st' predicate in solve",
    "UC301": "router-tier reference",
    "UC302": "spread-tier reference",
    "UC303": "NEWS-shift reference",
    "UC304": "broadcast reference",
    "UC305": "cross-shard reference under the derived placement",
    "UC401": "unused index set",
    "UC402": "element binding shadows an outer binding",
    "UC403": "dead construct arm (predicate constant false)",
    "UC501": "reduction proven commutative+associative (order-safe)",
    "UC502": "order-sensitive floating-point reduction",
    "UC503": "reduction body not provably commutativity-safe",
    "UC504": "order-sensitive oneof/$, selection escapes the construct",
    "UC505": "batched/sharded reordering gated on this site's verdict",
}

#: code -> (default severity, detail paragraph, fix-it template) — the
#: table behind ``repro lint --explain UCxxx``.  Severities are for
#: unguarded code; inside an ``st`` arm findings demote one level.
DETAILS = {
    "UC001": (
        "error",
        "The front end could not parse the file; the position points at "
        "the offending token.  Surfaced as a diagnostic so 'repro lint' "
        "reports it with the same machinery as every other finding.",
        "fix the syntax at the reported position",
    ),
    "UC002": (
        "error",
        "The program parsed but failed semantic analysis (unknown name, "
        "arity mismatch, bad index-set use, ...).",
        "fix the declaration or use at the reported position",
    ),
    "UC101": (
        "error",
        "The affine dependence test proves two active VPs write distinct "
        "values to one element or scalar — the single-assignment rule "
        "(LANGUAGE.md 3.4) is violated and the run will raise.",
        "make the target subscript injective over the active lanes, or "
        "guard the arms with disjoint 'st' predicates",
    ),
    "UC102": (
        "warning",
        "The write target has a data-dependent subscript; the analyzer "
        "can prove neither injectivity nor a collision.  The sanitizer "
        "observes such sites at runtime.",
        "prefer an affine subscript in the bound elements, or run with "
        "REPRO_SANITIZE=1 to observe the actual write set",
    ),
    "UC103": (
        "warning",
        "Two statements of one 'par' body write overlapping elements of "
        "the same array; evaluation order between statements is defined, "
        "but the overlap is usually unintended.",
        "split the writes across constructs or disjoint index ranges",
    ),
    "UC104": (
        "error",
        "A subscript is provably outside the array extent for some "
        "active VP.",
        "clamp the subscript or shrink the index set to the array extent",
    ),
    "UC201": (
        "error",
        "The 'solve' body has a dependence cycle at zero offset: it is "
        "not forward-substitutable and not a proper set of equations "
        "(LANGUAGE.md 3.6).  '*solve' is exempt — it iterates to a fixed "
        "point.",
        "break the zero-offset cycle, or use '*solve' for fixed-point "
        "iteration",
    ),
    "UC202": (
        "warning",
        "An 'others' arm can never run because an 'st' predicate is "
        "constant true.",
        "drop the 'others' arm or make the predicate non-trivial",
    ),
    "UC203": (
        "warning",
        "An 'st' predicate in 'solve' is statically constant, so it "
        "selects the same lanes every sweep.",
        "hoist the constant predicate out of the solve",
    ),
    "UC301": (
        "warning",
        "The reference is serviced by the general router (data-dependent "
        "or alignment-permuting subscript) — the most expensive tier.",
        "add the suggested 'map' section, or restructure the subscript "
        "into a constant-offset shift",
    ),
    "UC302": (
        "info",
        "The reference is serviced by a log-depth spread (value constant "
        "along unused grid axes).",
        "a 'copy' map would make the reference local",
    ),
    "UC303": (
        "info",
        "The reference is a constant-offset NEWS shift.",
        "a 'permute' map would make the reference local",
    ),
    "UC304": (
        "info",
        "The reference is a front-end broadcast (value uniform across "
        "the grid).",
        "no action needed; broadcasts are cheap",
    ),
    "UC305": (
        "info",
        "The reference is proven to cross the shard boundary under the "
        "derived placement (see 'Sharded execution' in PERFORMANCE.md).",
        "the named fold/permute/copy map would localize the reference",
    ),
    "UC401": (
        "warning",
        "An index set is declared but never used.",
        "delete the declaration",
    ),
    "UC402": (
        "info",
        "An element binding shadows an outer binding of the same name.",
        "rename the inner element",
    ),
    "UC403": (
        "warning",
        "A construct arm is dead: its 'st' predicate is constant false.",
        "delete the arm or fix the predicate",
    ),
    "UC501": (
        "info",
        "The reduction is proven commutative and associative: the "
        "idempotent/boolean builtins ($<, $>, $&&, $||, $^) uncondition"
        "ally; integer $+/$* with an interval-proven no-overflow "
        "certificate (or the exact mod-2^64 wraparound argument); and "
        "only when the body passes the syntactic commutativity check "
        "over the tractable fragment (arxiv 1605.01497).  Batched "
        "blocked reductions, cross-shard pre-combining and the order-"
        "permuting sanitizer treat UC501 as the reorder-legality bit.",
        "no action needed; this site may be reordered freely",
    ),
    "UC502": (
        "warning",
        "Floating-point $+/$* is order-sensitive: float64 rounding does "
        "not associate, so a reordered combine may differ in the last "
        "ulp.  The engines preserve the written operand order at such "
        "sites (no blocked reordering, no cross-shard pre-combining).",
        "accumulate in an integer domain (scaled fixed-point), or "
        "compare downstream results with an explicit tolerance",
    ),
    "UC503": (
        "warning",
        "The reduction body falls outside the tractable commutativity "
        "fragment (side effects, RNG, opaque calls, nested $,), so the "
        "analyzer cannot prove reordering safe.  The site runs on the "
        "order-preserving path.  An error under --werror.",
        "restrict the body to pure arithmetic over the bound elements "
        "so the syntactic check can prove commutativity",
    ),
    "UC504": (
        "warning",
        "An order-sensitive selection ($, or 'oneof') produces a value "
        "that escapes the construct — it is read later, returned, or "
        "printed — so the program's output depends on the RNG-chosen "
        "operand.",
        "fold the selection into a deterministic reduction ($< or $>), "
        "or keep the selected value local to the construct",
    ),
    "UC505": (
        "info",
        "A batched or sharded execution path consults this reduction "
        "site's determinism verdict before reordering partials; unproven "
        "sites fall back to the order-preserving path bit-identically.",
        "no action needed; informational cross-reference to UC501-UC503",
    ),
}


def explain(code: str) -> str:
    """The ``repro lint --explain UCxxx`` rendering for one stable code."""
    code = code.upper()
    if code not in CODES:
        known = ", ".join(sorted(CODES))
        raise KeyError(f"unknown diagnostic code {code!r}; known codes: {known}")
    severity, detail, fixit = DETAILS[code]
    return "\n".join(
        [
            f"{code}: {CODES[code]}",
            f"  severity: {severity} (demoted one level inside an 'st' arm)",
            f"  {detail}",
            f"  fix-it: {fixit}",
            "  see: docs/ANALYSIS.md",
        ]
    )


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str  # stable code, e.g. 'UC101'
    severity: str  # 'error' | 'warning' | 'info'
    message: str
    line: int = 0
    col: int = 0
    file: str = "<program>"
    hint: str = ""  # fix-it suggestion, empty when none applies

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:  # pragma: no cover - programmer error
            raise ValueError(f"bad severity {self.severity!r}")
        if self.code not in CODES:  # pragma: no cover - programmer error
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def render(self) -> str:
        text = (
            f"{self.file}:{self.line}:{self.col}: "
            f"{self.severity}: {self.code}: {self.message}"
        )
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class LintReport:
    """All diagnostics for one linted program."""

    file: str = "<program>"
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags) -> None:
        self.diagnostics.extend(diags)

    def sort(self) -> None:
        """Stable source order: position first, then code."""
        self.diagnostics.sort(key=lambda d: (d.line, d.col, d.code))

    # -- queries ---------------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    def exit_code(self, *, werror: bool = False) -> int:
        """CLI convention: 1 when errors (or warnings under --werror)."""
        if self.errors:
            return 1
        if werror and self.warnings:
            return 1
        return 0

    # -- rendering -------------------------------------------------------------

    def render_text(self) -> str:
        lines = [d.render() for d in self.diagnostics]
        lines.append(
            f"{self.file}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), "
            f"{len(self.diagnostics) - len(self.errors) - len(self.warnings)} note(s)"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "file": self.file,
                "diagnostics": [d.to_json() for d in self.diagnostics],
                "errors": len(self.errors),
                "warnings": len(self.warnings),
            },
            indent=2,
        )
