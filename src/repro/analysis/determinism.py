"""Determinism envelopes for reductions (uclint UC5xx).

Every reduction site — the ``$op`` expressions both engines evaluate,
the send-with-op scatters of the processor optimization
(``interp/sendreduce.py``'s ``_COMBINE_AT`` table) and the router
``COMBINERS`` they dispatch — is classified into one envelope:

UC501
    proven commutative + associative: the idempotent/logical builtins
    (``$<``, ``$>``, ``$&&``, ``$||``, ``$^``), integer ``$+``/``$*``
    (with an interval-proven no-overflow certificate where the bounds
    are tractable, else the exact mod-2^64 wraparound argument), and
    only when the body passes the syntactic commutativity check over
    the tractable expression fragment (arxiv 1605.01497).
UC502
    floating-point ``$+``/``$*``: the value is order-sensitive because
    rounding does not associate.
UC503
    body outside the tractable fragment (side effects, RNG, calls whose
    purity cannot be established): commutativity unprovable.
UC504
    order-sensitive selection (``$,`` / ``oneof``) whose result escapes
    the construct — read later, returned, or printed.
UC505
    informational: a batched or sharded execution path consults this
    site's verdict before reordering partials.

The per-site :class:`ReductionVerdict` table built by
:func:`determinism_claims` is the runtime's single reordering legality
oracle: ``interp/batch.py``'s blocked reduction, ``machine/shards.py``'s
cross-shard pre-combining and the sanitizer's order-permutation mode all
consult it instead of assuming.  A site without a UC501 proof is demoted
to the order-preserving path, bit-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..lang import ast
from ..lang.tokens import REDUCTION_OPS
from .context import AnalysisModel, ConstructSite, ReductionSite
from .diagnostics import Diagnostic, SEVERITIES

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: canonical op name -> source spelling after '$'
_OP_SPELLING = {canon: spell for spell, canon in REDUCTION_OPS.items()}

#: builtins that are pure functions of their arguments
_PURE_BUILTINS = frozenset({"abs", "fabs", "sqrt", "min", "max"})

#: builtins returning floating-point values
_FLOAT_BUILTINS = frozenset({"fabs", "sqrt"})

#: the always-commutative, always-associative combiners (idempotent or
#: boolean — reordering cannot change the value for any operand set)
_SAFE_OPS = frozenset({"min", "max", "logand", "logor", "logxor"})


@dataclass(frozen=True)
class ReductionVerdict:
    """One reduction site's determinism envelope.

    ``order_safe`` is the runtime legality bit: True means reordering
    the combine (blocked reductions, cross-shard pre-combining, operand
    permutation) is proven value-identical; anything else must take the
    order-preserving path.
    """

    code: str  # "UC501" | "UC502" | "UC503" | "UC504"
    order_safe: bool
    op: str
    reason: str
    line: int = 0
    col: int = 0

    @property
    def proven(self) -> bool:
        return self.code == "UC501"


def spelled(op: str) -> str:
    """Display form of a canonical reduction op (``add`` -> ``$+``)."""
    return "$" + _OP_SPELLING.get(op, op)


# ---------------------------------------------------------------------------
# the tractable expression fragment
# ---------------------------------------------------------------------------


def _body_issue(node: ast.Reduction, model: AnalysisModel) -> Optional[str]:
    """Why the reduction body falls outside the tractable fragment.

    The syntactic commutativity check (the arxiv 1605.01497 fragment):
    a body built only of literals, bound names, array reads and pure
    arithmetic is a per-operand function, so the builtin combiner's own
    algebra decides commutativity.  Side effects, RNG consumption and
    opaque calls make the evaluation order itself observable.
    """
    for sub in ast.walk(node):
        if sub is node:
            continue
        if isinstance(sub, (ast.Assign, ast.IncDec)):
            return "the body assigns to program state"
        if isinstance(sub, ast.Call):
            if sub.func in ("rand", "srand"):
                return "the body consumes the RNG stream (rand)"
            if sub.func in ("printf", "swap"):
                return f"the body calls {sub.func}() for its side effect"
            if sub.func not in _PURE_BUILTINS:
                return (
                    f"the body calls {sub.func}(), outside the tractable "
                    "commutativity fragment"
                )
        if isinstance(sub, ast.Reduction) and sub.op == "arbitrary":
            return "an operand is itself a $, (arbitrary) selection"
    return None


def _is_float(e: ast.Expr, site: ReductionSite, model: AnalysisModel) -> bool:
    """Static float-ness of an expression (C-style promotion rules)."""
    if isinstance(e, (ast.FloatLit, ast.InfLit)):
        return True
    if isinstance(e, ast.IntLit):
        return False
    if isinstance(e, ast.Name):
        name = e.ident
        if name in site.bind or name in site.scalars:
            return False  # index-set elements are integers
        ctype = model.scalar_types.get(name)
        return ctype == "float"
    if isinstance(e, ast.Index):
        entry = model.info.arrays.get(e.base) or model.local_arrays.get(e.base)
        return entry is not None and entry[0] == "float"
    if isinstance(e, ast.Call):
        if e.func in _FLOAT_BUILTINS:
            return True
        if e.func in ("abs", "min", "max"):
            return any(_is_float(a, site, model) for a in e.args)
        return False  # rand and friends are integral
    if isinstance(e, ast.Unary):
        if e.op in ("!", "~"):
            return False
        return _is_float(e.operand, site, model)
    if isinstance(e, ast.Binary):
        if e.op in ("+", "-", "*", "/"):
            return _is_float(e.left, site, model) or _is_float(
                e.right, site, model
            )
        return False  # comparisons, logicals, %, shifts, bitwise: int
    if isinstance(e, ast.Ternary):
        return _is_float(e.then, site, model) or _is_float(e.els, site, model)
    if isinstance(e, ast.Assign):
        return _is_float(e.value, site, model)
    if isinstance(e, ast.Reduction):
        return any(_is_float(a.expr, site, model) for a in e.arms) or (
            e.others is not None and _is_float(e.others, site, model)
        )
    return False


def _operands_float(node: ast.Reduction, site, model) -> bool:
    if any(_is_float(arm.expr, site, model) for arm in node.arms):
        return True
    return node.others is not None and _is_float(node.others, site, model)


# ---------------------------------------------------------------------------
# interval bounds (the no-overflow certificate)
# ---------------------------------------------------------------------------


def _bounds(
    e: ast.Expr, site: ReductionSite, model: AnalysisModel
) -> Optional[Tuple[int, int]]:
    """Integer interval of an expression, or None when not tractable."""
    if isinstance(e, ast.IntLit):
        return (e.value, e.value)
    if isinstance(e, ast.Name):
        name = e.ident
        axis_idx = site.bind.get(name)
        if axis_idx is not None and axis_idx < len(site.axes):
            vals = site.axes[axis_idx].values
            if vals:
                return (min(vals), max(vals))
            return None
        set_name = site.scalars.get(name)
        if set_name is not None:
            isv = model.info.index_sets.get(set_name)
            if isv is not None and isv.values:
                return (min(isv.values), max(isv.values))
            return None
        const = model.info.constants.get(name)
        if const is not None:
            return (int(const), int(const))
        return None
    if isinstance(e, ast.Unary):
        if e.op in ("-", "+"):
            b = _bounds(e.operand, site, model)
            if b is None:
                return None
            return (-b[1], -b[0]) if e.op == "-" else b
        if e.op == "!":
            return (0, 1)
        return None
    if isinstance(e, ast.Binary):
        if e.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
            return (0, 1)
        la = _bounds(e.left, site, model)
        lb = _bounds(e.right, site, model)
        if la is None or lb is None:
            return None
        if e.op == "+":
            return (la[0] + lb[0], la[1] + lb[1])
        if e.op == "-":
            return (la[0] - lb[1], la[1] - lb[0])
        if e.op == "*":
            prods = (la[0] * lb[0], la[0] * lb[1], la[1] * lb[0], la[1] * lb[1])
            return (min(prods), max(prods))
        if e.op == "%":
            hi = max(abs(lb[0]), abs(lb[1]))
            if hi == 0:
                return None
            return (-hi + 1, hi - 1) if la[0] < 0 else (0, hi - 1)
        return None
    if isinstance(e, ast.Ternary):
        ta = _bounds(e.then, site, model)
        tb = _bounds(e.els, site, model)
        if ta is None or tb is None:
            return None
        return (min(ta[0], tb[0]), max(ta[1], tb[1]))
    if isinstance(e, ast.Call) and e.func in ("min", "max") and len(e.args) == 2:
        a = _bounds(e.args[0], site, model)
        b = _bounds(e.args[1], site, model)
        if a is None or b is None:
            return None
        if e.func == "min":
            return (min(a[0], b[0]), min(a[1], b[1]))
        return (max(a[0], b[0]), max(a[1], b[1]))
    if isinstance(e, ast.Call) and e.func in ("abs", "fabs") and len(e.args) == 1:
        a = _bounds(e.args[0], site, model)
        if a is None:
            return None
        lo = 0 if a[0] <= 0 <= a[1] else min(abs(a[0]), abs(a[1]))
        return (lo, max(abs(a[0]), abs(a[1])))
    return None  # array reads and everything else: data-dependent


def _overflow_proof(
    node: ast.Reduction, site: ReductionSite, model: AnalysisModel
) -> Optional[str]:
    """A human-readable no-overflow certificate for int ``$+``/``$*``,
    or None when the interval analysis cannot bound the operands."""
    hulls = []
    for arm in node.arms:
        b = _bounds(arm.expr, site, model)
        if b is None:
            return None
        hulls.append(b)
    if node.others is not None:
        b = _bounds(node.others, site, model)
        if b is None:
            return None
        hulls.append(b)
    lo = min(h[0] for h in hulls)
    hi = max(h[1] for h in hulls)
    # masked-off lanes contribute the identity element
    ident = 0 if node.op == "add" else 1
    lo, hi = min(lo, ident), max(hi, ident)
    extent = 1
    for axis in site.reduce_axes:
        extent *= max(1, axis.extent)
    n_operands = extent * (len(node.arms) + (1 if node.others is not None else 0))
    if node.op == "add":
        total_lo = n_operands * min(lo, 0)
        total_hi = n_operands * max(hi, 0)
        if _INT64_MIN <= total_lo and total_hi <= _INT64_MAX:
            return (
                f"every partial sum of {n_operands} operands in "
                f"[{lo}, {hi}] fits int64"
            )
        return None
    # mul: bound |v|^n in bits
    max_abs = max(abs(lo), abs(hi), 1)
    if max_abs == 1:
        return f"every operand lies in [{lo}, {hi}]; products stay in [-1, 1]"
    if n_operands * math.log2(max_abs) <= 62:
        return (
            f"every partial product of {n_operands} operands bounded by "
            f"|v| <= {max_abs} fits int64"
        )
    return None


# ---------------------------------------------------------------------------
# classification
# ---------------------------------------------------------------------------


def classify_reduction(
    site: ReductionSite, model: AnalysisModel
) -> ReductionVerdict:
    """One site's determinism envelope (the legality-oracle entry)."""
    node = site.node
    if node.op == "arbitrary":
        return ReductionVerdict(
            code="UC504",
            order_safe=False,
            op=node.op,
            reason="the $, operator delivers one RNG-chosen operand",
            line=node.line,
            col=node.col,
        )
    issue = _body_issue(node, model)
    if issue is not None:
        return ReductionVerdict(
            code="UC503",
            order_safe=False,
            op=node.op,
            reason=issue,
            line=node.line,
            col=node.col,
        )
    if node.op in _SAFE_OPS:
        return ReductionVerdict(
            code="UC501",
            order_safe=True,
            op=node.op,
            reason=(
                f"{spelled(node.op)} is idempotent/boolean: commutative and "
                "associative for every operand order"
            ),
            line=node.line,
            col=node.col,
        )
    # add / mul
    if _operands_float(node, site, model):
        return ReductionVerdict(
            code="UC502",
            order_safe=False,
            op=node.op,
            reason=(
                f"floating-point {spelled(node.op)} rounds differently "
                "under reordering (addition does not associate in float64)"
            ),
            line=node.line,
            col=node.col,
        )
    proof = _overflow_proof(node, site, model)
    if proof is not None:
        reason = f"integer {spelled(node.op)} with interval-proven no-overflow: {proof}"
    else:
        reason = (
            f"integer {spelled(node.op)} is exact modulo 2^64 two's-complement "
            "wraparound, identically in both engines"
        )
    return ReductionVerdict(
        code="UC501",
        order_safe=True,
        op=node.op,
        reason=reason,
        line=node.line,
        col=node.col,
    )


def determinism_claims(model: AnalysisModel) -> Dict[int, ReductionVerdict]:
    """``id(Reduction node) -> verdict`` for every reduction site.

    Keyed by node identity because the analyzer walks the same AST
    objects the interpreter executes (the same trick the sanitizer's
    tier claims rely on), so DSL-built programs without positions
    resolve just as well as parsed sources.
    """
    claims: Dict[int, ReductionVerdict] = {}
    for site in model.reductions:
        claims[id(site.node)] = classify_reduction(site, model)
    return claims


# ---------------------------------------------------------------------------
# escape analysis (UC504)
# ---------------------------------------------------------------------------


def _read_sites(program: ast.Program) -> Tuple[List[Tuple[int, int, str]], set]:
    """(ordered reads of each name, names escaping via return/printf).

    Reads are (line, col, name) in source position; a pure-overwrite
    assignment target is a write, not a read (op-assigns read too).
    """
    reads: List[Tuple[int, int, str]] = []
    outputs: set = set()

    def note(e: ast.Expr, *, as_output: bool) -> None:
        for sub in ast.walk(e):
            if isinstance(sub, ast.Name):
                reads.append((sub.line, sub.col, sub.ident))
                if as_output:
                    outputs.add(sub.ident)
            elif isinstance(sub, ast.Index):
                reads.append((sub.line, sub.col, sub.base))
                if as_output:
                    outputs.add(sub.base)

    def walk(node: ast.Node) -> None:
        if isinstance(node, ast.Assign):
            if isinstance(node.target, ast.Index):
                if node.op:
                    reads.append((node.target.line, node.target.col, node.target.base))
                for sub in node.target.subs:
                    note(sub, as_output=False)
            elif isinstance(node.target, ast.Name) and node.op:
                reads.append((node.target.line, node.target.col, node.target.ident))
            walk(node.value)
            return
        if isinstance(node, ast.Return):
            if node.value is not None:
                note(node.value, as_output=True)
            return
        if isinstance(node, ast.Call) and node.func == "printf":
            for a in node.args:
                note(a, as_output=True)
            return
        if isinstance(node, (ast.Name, ast.Index)):
            note(node, as_output=False)
            return
        for child in ast.children(node):
            walk(child)

    walk(program)
    return reads, outputs


def _escapes(
    name: str,
    after: Tuple[int, int],
    reads: List[Tuple[int, int, str]],
    outputs: set,
) -> Optional[str]:
    """Where the written name escapes, or None (source-order heuristic)."""
    if name in outputs:
        return "reaches program output"
    for line, col, read in reads:
        if read == name and (line, col) > after:
            return f"read at line {line}"
    return None


def _construct_end(stmt: ast.UCStmt) -> int:
    return max((n.line for n in ast.walk(stmt) if n.line), default=stmt.line)


def _enclosing_assign(program: ast.Program, node: ast.Reduction):
    """The ``Assign`` whose value subtree contains ``node``, if any."""
    for sub in ast.walk(program):
        if isinstance(sub, ast.Assign):
            if any(inner is node for inner in ast.walk(sub.value)):
                return sub
    return None


# ---------------------------------------------------------------------------
# the lint pass
# ---------------------------------------------------------------------------


def _demote(severity: str, guarded: bool) -> str:
    """Inside an ``st`` arm findings are demoted one level, as everywhere."""
    if not guarded:
        return severity
    idx = SEVERITIES.index(severity)
    return SEVERITIES[max(0, idx - 1)]


def analyze_determinism(model: AnalysisModel, file: str) -> List[Diagnostic]:
    """Emit the UC5xx envelope of every reduction and ``oneof`` site."""
    diags: List[Diagnostic] = []
    reads, outputs = _read_sites(model.info.program)

    for site in model.reductions:
        node = site.node
        verdict = classify_reduction(site, model)
        if verdict.code == "UC501":
            diags.append(
                Diagnostic(
                    code="UC501",
                    severity="info",
                    message=(
                        f"reduction {spelled(node.op)} proven commutative+"
                        f"associative: {verdict.reason}"
                    ),
                    line=node.line,
                    col=node.col,
                    file=file,
                )
            )
        elif verdict.code == "UC502":
            diags.append(
                Diagnostic(
                    code="UC502",
                    severity=_demote("warning", site.guarded),
                    message=(
                        f"reduction {spelled(node.op)} is order-sensitive: "
                        f"{verdict.reason}"
                    ),
                    line=node.line,
                    col=node.col,
                    file=file,
                    hint=(
                        "accumulate in an integer domain (scaled fixed-point) "
                        "or compare downstream results with an explicit "
                        "tolerance; batched and sharded engines preserve the "
                        "written operand order at this site"
                    ),
                )
            )
        elif verdict.code == "UC503":
            diags.append(
                Diagnostic(
                    code="UC503",
                    severity=_demote("warning", site.guarded),
                    message=(
                        f"reduction {spelled(node.op)} body is not provably "
                        f"commutativity-safe: {verdict.reason}"
                    ),
                    line=node.line,
                    col=node.col,
                    file=file,
                    hint=(
                        "restrict the body to a pure arithmetic expression "
                        "over the bound elements so the syntactic "
                        "commutativity check (the arxiv 1605.01497 tractable "
                        "fragment) can prove reordering safe"
                    ),
                )
            )
        else:  # UC504: arbitrary selection — flag only when it escapes
            assign = _enclosing_assign(model.info.program, node)
            target = None
            if assign is not None:
                if isinstance(assign.target, ast.Index):
                    target = assign.target.base
                elif isinstance(assign.target, ast.Name):
                    target = assign.target.ident
            where = (
                _escapes(target, (assign.line, assign.col), reads, outputs)
                if target is not None
                else "reaches program output"
            )
            if where is not None:
                diags.append(
                    Diagnostic(
                        code="UC504",
                        severity=_demote("warning", site.guarded),
                        message=(
                            f"order-sensitive $, selection escapes the "
                            f"construct ({where}): the value depends on the "
                            "RNG-chosen operand"
                        ),
                        line=node.line,
                        col=node.col,
                        file=file,
                        hint=(
                            "fold the selection into a deterministic "
                            "reduction ($< or $>) or keep its result local "
                            "to the construct"
                        ),
                    )
                )
        if node.op != "arbitrary":
            diags.append(
                Diagnostic(
                    code="UC505",
                    severity="info",
                    message=(
                        "batched blocked-reduction and cross-shard "
                        "pre-combining consult this site's determinism "
                        f"verdict ({verdict.code}) before reordering partials"
                    ),
                    line=node.line,
                    col=node.col,
                    file=file,
                )
            )

    # oneof constructs: one RNG-chosen arm runs; escaping writes are
    # order-sensitive in exactly the $, sense
    for site in model.constructs:
        if site.kind != "oneof":
            continue
        end = _construct_end(site.stmt)
        seen = set()
        for a in site.assigns:
            target = None
            if isinstance(a.assign.target, ast.Index):
                target = a.assign.target.base
            elif isinstance(a.assign.target, ast.Name):
                target = a.assign.target.ident
            if target is None or target in seen:
                continue
            seen.add(target)
            where = _escapes(target, (end, 10**9), reads, outputs)
            if where is not None:
                diags.append(
                    Diagnostic(
                        code="UC504",
                        severity=_demote("warning", site.guarded),
                        message=(
                            f"'oneof' runs one RNG-chosen arm and its write "
                            f"to {target!r} escapes the construct ({where})"
                        ),
                        line=site.stmt.line,
                        col=site.stmt.col,
                        file=file,
                        hint=(
                            "make the selection deterministic (a predicate "
                            f"choosing one arm) or keep {target!r} local to "
                            "the construct"
                        ),
                    )
                )
    return diags
