"""Sequential C on a Sun-4 front end: the figure-8 baseline.

The paper runs the grid shortest-path-with-obstacle program three ways:
sequential C on the Sun-4 workstation (``cc``), optimized sequential C
(``cc -O``), and data-parallel UC on the 16K CM.  We model the Sun-4 as
a scalar processor with a fixed per-operation cost (optimization buys a
constant factor), executing the same Jacobi-sweep algorithm cell by cell.
Elapsed time therefore grows as ``sweeps × cells × ops_per_cell`` while
the CM version's per-sweep cost is flat until the VP ratio exceeds one —
which is precisely the crossover figure 8 shows.
"""

from .model import SunModel
from .grid import sequential_obstacle_path

__all__ = ["SunModel", "sequential_obstacle_path"]
