"""Scalar cost model for the Sun-4 front end.

Calibration: a Sun-4/110 delivered roughly 7 MIPS peak; a compiled C
inner loop with memory traffic sustains a few million useful operations
per second, i.e. ~0.3 µs per operation unoptimized.  ``cc -O`` bought
roughly a 2–3× improvement on such kernels (the paper's figure 8 shows
the optimized curve at a bit under half the unoptimized one).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SunModel:
    """Elapsed-time accumulator for sequential scalar execution."""

    #: microseconds per scalar operation (load/op/store amortised)
    op_cost_us: float = 0.75
    #: speedup factor applied when compiled with -O
    optimize_factor: float = 2.4
    optimized: bool = False

    def __post_init__(self) -> None:
        self._time_us = 0.0
        self._ops = 0

    @property
    def effective_op_cost(self) -> float:
        if self.optimized:
            return self.op_cost_us / self.optimize_factor
        return self.op_cost_us

    def charge_ops(self, count: int) -> None:
        if count < 0:
            raise ValueError("negative op count")
        self._ops += count
        self._time_us += count * self.effective_op_cost

    @property
    def ops(self) -> int:
        return self._ops

    @property
    def elapsed_us(self) -> float:
        return self._time_us

    @property
    def elapsed_s(self) -> float:
        return self._time_us / 1e6

    def reset(self) -> None:
        self._time_us = 0.0
        self._ops = 0
