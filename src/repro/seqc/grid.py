"""Sequential grid shortest path on the Sun-4 model (figure 8 baseline).

Executes the same Jacobi relaxation the UC program performs, but charges
scalar costs: every cell visit pays for four neighbour loads, three min
operations, the increment, the change test and the store, plus loop
overhead — about 14 operations.  Elapsed time is therefore
``sweeps × R² × 14 × op_cost``, the steeply growing curve of figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..algorithms.grid_path import BIG, jacobi_step, obstacle_mask
from .model import SunModel

#: scalar operations charged per cell per sweep (see module docstring)
OPS_PER_CELL = 14
#: per-sweep loop management overhead (sweep counter, change flag reset)
OPS_PER_SWEEP = 6


@dataclass
class SequentialGridResult:
    distances: np.ndarray
    sweeps: int
    elapsed_us: float
    ops: int

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_us / 1e6


def sequential_obstacle_path(
    r: int,
    *,
    optimized: bool = False,
    walls: Optional[np.ndarray] = None,
    model: Optional[SunModel] = None,
    max_sweeps: Optional[int] = None,
) -> SequentialGridResult:
    """Run the obstacle relaxation serially; returns distances + timing."""
    m = model if model is not None else SunModel(optimized=optimized)
    w = walls if walls is not None else obstacle_mask(r)
    d = np.zeros((r, r), dtype=np.int64)
    d[w] = BIG
    d[0, 0] = 0
    limit = max_sweeps if max_sweeps is not None else 8 * r + 16
    sweeps = 0
    for _ in range(limit):
        new = jacobi_step(d, w, (0, 0))
        sweeps += 1
        m.charge_ops(r * r * OPS_PER_CELL + OPS_PER_SWEEP)
        if np.array_equal(new, d):
            return SequentialGridResult(new, sweeps, m.elapsed_us, m.ops)
        d = new
    raise RuntimeError(f"sequential relaxation did not converge in {limit} sweeps")
