"""Command-line front end: run, check, translate and analyse UC programs.

Usage (also via ``python -m repro``):

    repro run program.uc -D N=32 --print a --ledger
    repro check program.uc
    repro cstar program.uc            # emit C* source (paper appendix style)
    repro analyze program.uc          # communication report + map suggestions
    repro lint program.uc             # whole-program static analyzer (uclint)

``run`` executes ``main`` on the simulated CM-2 and reports the final
variables and simulated elapsed time; ``--no-maps`` ignores the program's
map sections (for quick before/after comparisons) and ``--pes`` resizes
the machine.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

import numpy as np

from .compiler.comm_opt import analyze_communication
from .compiler.cstar_gen import generate_cstar
from .compiler.processor_opt import analyze_program as analyze_vp_plans
from .interp.program import UCProgram
from .lang.errors import UCError
from .machine import MachineConfig, MachineError


def _parse_defines(items: Sequence[str]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for item in items:
        if "=" not in item:
            raise SystemExit(f"bad define {item!r}: expected NAME=VALUE")
        name, _, value = item.partition("=")
        try:
            out[name.strip()] = int(value, 0)
        except ValueError:
            raise SystemExit(f"bad define {item!r}: value must be an integer")
    return out


def _load_program(args: argparse.Namespace) -> UCProgram:
    try:
        source = open(args.file).read()
    except OSError as exc:
        raise SystemExit(f"cannot read {args.file}: {exc}")
    config = None
    if getattr(args, "pes", None):
        config = MachineConfig(n_pes=args.pes, name=f"CM (simulated, {args.pes} PEs)")
    try:
        return UCProgram(
            source,
            defines=_parse_defines(getattr(args, "define", []) or []),
            machine_config=config,
            apply_maps=not getattr(args, "no_maps", False),
            faults=getattr(args, "faults", None),
            sanitize=getattr(args, "sanitize", False),
            shards=getattr(args, "shards", None),
            placement=getattr(args, "placement", None) or "map",
        )
    except UCError as exc:
        raise SystemExit(f"{args.file}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"{args.file}: {exc}")


def _coerce_batch_input(obj, path: str):
    """One JSON params entry -> a run() inputs dict (lists become arrays)."""
    if obj is None:
        return None
    if not isinstance(obj, dict):
        raise SystemExit(f"{path}: each batch entry must be an object or null")
    out = {}
    for name, val in obj.items():
        if isinstance(val, list):
            arr = np.asarray(val)
            if arr.dtype.kind in "iub":
                arr = arr.astype(np.int64)
            elif arr.dtype.kind == "f":
                arr = arr.astype(np.float64)
            else:
                raise SystemExit(
                    f"{path}: {name!r} must be a numeric array or scalar"
                )
            out[name] = arr
        elif isinstance(val, (int, float)):
            out[name] = val
        else:
            raise SystemExit(f"{path}: {name!r} must be a number or an array")
    return out


def _cmd_run_batch(prog: UCProgram, args: argparse.Namespace) -> int:
    import json
    import time

    try:
        with open(args.batch) as fh:
            params = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read batch params {args.batch}: {exc}")
    if not isinstance(params, list) or not params:
        raise SystemExit(f"{args.batch}: expected a non-empty JSON list")
    inputs = [_coerce_batch_input(p, args.batch) for p in params]
    t0 = time.perf_counter()
    try:
        results = prog.run_batch(inputs, seed=args.seed)
    except UCError as exc:
        raise SystemExit(f"{args.file}: runtime error: {exc}")
    except MachineError as exc:
        raise SystemExit(f"{args.file}: machine fault: {exc}")
    wall_ms = (time.perf_counter() - t0) * 1e3
    for i, result in enumerate(results):
        if result.stdout:
            sys.stdout.write(result.stdout)
        for name in args.print or []:
            if name not in result:
                raise SystemExit(f"no variable named {name!r} in the program")
            value = result[name]
            if isinstance(value, np.ndarray):
                with np.printoptions(threshold=64, linewidth=100):
                    print(f"[{i}] {name} = {value}")
            else:
                print(f"[{i}] {name} = {value}")
        line = (
            f"-- lane {i}: simulated elapsed "
            f"{result.elapsed_us / 1e3:.3f} ms"
        )
        if getattr(args, "fingerprint", False):
            import hashlib

            digest = hashlib.sha256(
                repr(result.fingerprint).encode()
            ).hexdigest()
            line += f"  fingerprint {digest[:16]}"
        print(line)
    batched = results[-1].compile.get("batched_lanes", 0.0)
    mode = (
        f"batched x{int(batched)} lanes" if batched else "sequential fallback"
    )
    print(
        f"-- batch: {len(results)} instances in {wall_ms:.1f} ms wall ({mode})"
    )
    if args.stats:
        _print_stats(prog, results[-1])
    return 0


#: exit code for a run cancelled by ``--timeout`` (the conventional
#: "command timed out" code, distinct from the generic error exit 1)
TIMEOUT_EXIT = 124


def cmd_run(args: argparse.Namespace) -> int:
    from .interp.deadline import UCDeadlineError

    prog = _load_program(args)
    if getattr(args, "batch", None):
        if args.profile:
            raise SystemExit("--profile is not supported with --batch")
        if getattr(args, "timeout", None):
            raise SystemExit("--timeout is not supported with --batch")
        return _cmd_run_batch(prog, args)
    try:
        result = prog.run(
            seed=args.seed, profile=args.profile, deadline=args.timeout
        )
    except UCDeadlineError as exc:
        # deliberately not a bare abort: report how far the run got
        # (the checkpoint-position diagnostic) and exit distinctly
        print(
            f"{args.file}: timeout: {exc.reason} deadline exceeded after "
            f"{exc.wall_used_s:.3f}s wall / {exc.clock_used_us:.0f}us simulated",
            file=sys.stderr,
        )
        print(f"{args.file}: cancelled at {exc.position}", file=sys.stderr)
        return TIMEOUT_EXIT
    except UCError as exc:
        raise SystemExit(f"{args.file}: runtime error: {exc}")
    except MachineError as exc:
        raise SystemExit(f"{args.file}: machine fault: {exc}")
    if result.stdout:
        sys.stdout.write(result.stdout)
    names = args.print or sorted(result.keys())
    for name in names:
        if name not in result:
            raise SystemExit(f"no variable named {name!r} in the program")
        value = result[name]
        if isinstance(value, np.ndarray):
            with np.printoptions(threshold=64, linewidth=100):
                print(f"{name} = {value}")
        else:
            print(f"{name} = {value}")
    print(f"-- simulated elapsed: {result.elapsed_us / 1e3:.3f} ms "
          f"({result.elapsed_us:.0f} us)")
    if getattr(args, "fingerprint", False):
        import hashlib

        digest = hashlib.sha256(repr(result.fingerprint).encode()).hexdigest()
        print(f"-- clock fingerprint: {digest[:16]}")
    if args.ledger:
        print("-- instruction ledger:")
        for kind in sorted(result.counts):
            print(
                f"   {kind:16s} x{result.counts[kind]:<8d} "
                f"{result.times[kind]:12.0f} us"
            )
    if args.profile and result.profile:
        print("-- per-statement profile (simulated):")
        for label, us in sorted(result.profile.items(), key=lambda kv: -kv[1]):
            share = 100.0 * us / max(result.elapsed_us, 1e-9)
            print(f"   {us/1e3:10.2f} ms  {share:5.1f}%  {label}")
    if args.stats:
        _print_stats(prog, result)
    return 0


def _print_stats(prog: UCProgram, result) -> None:
        interp = prog.last_interpreter
        assert interp is not None
        print("-- execution stats:")
        if result.compile:
            # wall-clock compile/execute breakdown for this run: *_s keys
            # are seconds; recompiles counts plan-cache misses during the
            # run (a warm compile store shows everything as zero)
            for key in sorted(result.compile):
                value = result.compile[key]
                if key.endswith("_s"):
                    print(f"   compile.{key:16s} {value * 1e3:10.3f} ms")
                else:
                    print(f"   compile.{key:16s} {value:g}")
        if result.store:
            for key in sorted(result.store):
                print(f"   store.{key:18s} {result.store[key]}")
        cache = getattr(interp, "plan_cache", None)
        if cache is not None:
            for key, value in sorted(cache.stats().items()):
                print(f"   plan_cache.{key:12s} {value}")
        tiers = interp.machine.clock.tier_counts
        if tiers:
            for tier in sorted(tiers):
                print(f"   tier.{tier:18s} x{tiers[tier]}")
        else:
            print("   tier dispatches: none (no remote references)")
        if result.frontier:
            for key in sorted(result.frontier):
                print(f"   frontier.{key:18s} {result.frontier[key]}")
            if result.frontier_trace:
                shrinks = " ".join(
                    f"{active}/{domain}"
                    for active, domain in result.frontier_trace
                )
                total_a = sum(a for a, _d in result.frontier_trace)
                total_d = sum(d for _a, d in result.frontier_trace)
                print(f"   frontier.sweeps (active/domain VPs): {shrinks}")
                if total_d:
                    print(
                        "   frontier.shrink "
                        f"{100.0 * total_a / total_d:.1f}% of full-sweep VPs"
                    )
        if result.fusion:
            for key in sorted(result.fusion):
                print(f"   fusion.{key:18s} {result.fusion[key]}")
        if result.shards:
            sh = result.shards
            print(
                f"   shards: {sh['n_shards']} ({sh['policy']} placement, "
                f"axis {sh['axis']}), live {sh['live']}"
            )
            print(
                f"   shards.cross_refs       {sh['cross_refs']}/{sh['refs']} "
                "remote refs cross a shard boundary"
            )
            print(
                f"   shards.intershard       x{sh['intershard_cycles']} "
                f"cycles ({sh['intershard_bytes']} bytes)"
            )
            print(
                f"   shards.reductions       "
                f"{sh['reductions_precombined']} pre-combined (UC501), "
                f"{sh['reductions_ordered']} ordered fallback"
            )
            for pair, t in sorted(sh["pairs"].items()):
                print(
                    f"   shards.pair {pair:10s} {t['elems']} elems "
                    f"({t['bytes']} bytes)"
                )
            for row in sh["per_shard"]:
                state = "live" if row["live"] else "retired"
                print(
                    f"   shards.shard[{row['shard']}] {state:8s} "
                    f"{row['time_us']:12.0f} us  "
                    f"intershard x{row['intershard_cycles']}"
                )
        if result.recovery:
            for key in sorted(result.recovery):
                print(f"   recovery.{key:14s} {result.recovery[key]}")
        if result.sanitizer:
            s = result.sanitizer
            print(
                "   sanitizer: "
                f"{s['writes_checked']} scatters checked "
                f"({s['duplicate_writes']} benign duplicates), "
                f"{s['tier_sites_verified']}/{s['tier_sites_observed']} "
                "tier sites verified, "
                f"{s.get('reductions_checked', 0)} reductions permuted "
                f"({s.get('reductions_confirmed', 0)} order-independent, "
                f"{s.get('order_sensitivity_observed', 0)} order-sensitive "
                "as claimed), 0 contradictions"
            )
        for t_us, kind, op in result.fault_log:
            print(f"   fault: {kind} during {op!r} at t={t_us:.0f}us")
        if result.dead_pes:
            print(f"   dead PEs: {result.dead_pes}")


def cmd_check(args: argparse.Namespace) -> int:
    prog = _load_program(args)
    n_arrays = len(prog.info.arrays)
    n_sets = len(prog.info.index_sets)
    print(
        f"{args.file}: OK ({n_sets} index sets, {n_arrays} arrays, "
        f"{len(prog.info.functions)} functions, "
        f"{len(prog.layouts.non_canonical())} mapped arrays)"
    )
    return 0


def cmd_cstar(args: argparse.Namespace) -> int:
    prog = _load_program(args)
    print(generate_cstar(prog.info, prog.layouts))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    prog = _load_program(args)
    report = analyze_communication(prog.info, prog.layouts)
    print(f"{args.file}: {len(report.references)} parallel array references")
    for ref in report.references:
        note = f"  ({ref.note})" if ref.note else ""
        print(f"  line {ref.line:4d}  {ref.kind:9s}  {ref.text}{note}")
    if report.suggestions:
        print("suggestions:")
        for s in report.suggestions:
            print(f"  - {s}")
    plans = [p for p in analyze_vp_plans(prog.info) if p.partitioned]
    for p in plans:
        print(
            f"processor optimization: reduction at line {p.line} needs "
            f"{p.optimized_vps} VPs (naive: {p.naive_vps})"
        )
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import lint_program

    if args.explain:
        from .analysis import explain

        try:
            print(explain(args.explain))
        except KeyError as exc:
            raise SystemExit(str(exc.args[0]))
        if not args.files:
            return 0
    elif not args.files:
        raise SystemExit("repro lint: needs files to lint (or --explain UCxxx)")

    defines = _parse_defines(args.define or [])
    worst = 0
    json_reports: List[str] = []
    for path in args.files:
        try:
            source = open(path).read()
        except OSError as exc:
            raise SystemExit(f"cannot read {path}: {exc}")
        report = lint_program(
            source,
            defines=defines,
            apply_maps=not args.no_maps,
            filename=path,
        )
        if args.format == "json":
            json_reports.append(report.render_json())
        else:
            print(report.render_text())
        worst = max(worst, report.exit_code(werror=args.werror))
    if args.format == "json":
        if len(json_reports) == 1:
            print(json_reports[0])
        else:
            print("[" + ",\n".join(json_reports) + "]")
    return worst


def _spec_from_json(entry, path: str):
    """One job object from a ``repro serve`` jobs file -> JobSpec."""
    from .interp.deadline import Deadline
    from .service import JobSpec, RetryPolicy

    if not isinstance(entry, dict):
        raise SystemExit(f"{path}: each job must be a JSON object")
    if "source" in entry:
        source = entry["source"]
    elif "file" in entry:
        try:
            source = open(entry["file"]).read()
        except OSError as exc:
            raise SystemExit(f"{path}: cannot read {entry['file']}: {exc}")
    else:
        raise SystemExit(f"{path}: job needs a \"source\" or \"file\" key")
    deadline = None
    if entry.get("deadline"):
        d = entry["deadline"]
        deadline = Deadline(wall_s=d.get("wall_s"), clock_us=d.get("clock_us"))
    retry = None
    if entry.get("retry"):
        retry = RetryPolicy(**entry["retry"])
    return JobSpec(
        source=source,
        defines={k: int(v) for k, v in (entry.get("defines") or {}).items()},
        inputs=_coerce_batch_input(entry.get("inputs"), path),
        tenant=entry.get("tenant", "default"),
        seed=int(entry.get("seed", 20250704)),
        deadline=deadline,
        faults=entry.get("faults"),
        retry=retry,
    )


def cmd_serve(args: argparse.Namespace) -> int:
    import json

    from .service import ExecutionService, ServiceConfig

    budgets = {}
    for item in args.budget or []:
        if "=" not in item:
            raise SystemExit(f"bad budget {item!r}: expected TENANT=MICROSECONDS")
        tenant, _, us = item.partition("=")
        budgets[tenant.strip()] = float(us)
    config = ServiceConfig(
        workers=args.workers,
        max_queue=args.max_queue,
        coalesce=not args.no_coalesce,
        preempt_slice_us=args.slice_us,
        preempt_probability=args.chaos,
        seed=args.seed,
        spool_dir=args.spool,
        tenant_budget_us=budgets or None,
    )
    if args.resume:
        svc = ExecutionService.resume(args.resume, config)
        print(
            f"-- resumed {len(svc.jobs)} journalled jobs from {args.resume} "
            f"({len(svc.queue)} in flight)"
        )
    else:
        svc = ExecutionService(config)
    if args.jobs:
        try:
            with open(args.jobs) as fh:
                entries = json.load(fh)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read jobs file {args.jobs}: {exc}")
        if not isinstance(entries, list):
            raise SystemExit(f"{args.jobs}: expected a JSON list of job objects")
        for entry in entries:
            svc.submit(_spec_from_json(entry, args.jobs))
    elif not args.resume:
        raise SystemExit("serve needs a jobs file, --resume DIR, or both")
    results = svc.drain()
    for job_id in sorted(results, key=lambda j: int(j[1:])):
        res = results[job_id]
        line = f"{job_id:>6s}  {res.state:8s} tenant={res.tenant}"
        if res.ok:
            import hashlib

            digest = hashlib.sha256(repr(res.fingerprint).encode()).hexdigest()
            line += (
                f"  {res.clock_us / 1e3:10.3f} ms simulated"
                f"  attempts={res.attempts} preemptions={res.preemptions}"
                f"  fingerprint {digest[:16]}"
            )
        elif res.error is not None:
            reason = res.error.get("reason") or res.error.get("type")
            line += f"  {reason}: {res.error.get('message', '')}"[:120]
        print(line)
    lost = svc.lost_jobs()
    s = svc.stats
    print(
        f"-- service: {s['done']} done, {s['failed']} failed, "
        f"{s['rejected']} rejected of {s['submitted']} submitted; "
        f"{s['preemptions']} preemptions, {s['retries']} retries, "
        f"{s['coalesced_lanes']} coalesced lanes, {len(lost)} lost"
    )
    return 1 if lost else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UC language tools on a simulated Connection Machine",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("file", help="UC source file")
        p.add_argument(
            "-D",
            "--define",
            action="append",
            metavar="NAME=VALUE",
            help="compile-time constant (repeatable)",
        )
        p.add_argument("--no-maps", action="store_true", help="ignore map sections")
        p.add_argument("--pes", type=int, help="physical processors (default 16384)")

    p_run = sub.add_parser("run", help="execute main on the simulator")
    common(p_run)
    p_run.add_argument("--seed", type=int, default=20250704, help="RNG seed")
    p_run.add_argument(
        "--print", action="append", metavar="VAR", help="variable(s) to print"
    )
    p_run.add_argument("--ledger", action="store_true", help="print the cost ledger")
    p_run.add_argument(
        "--batch",
        metavar="PARAMS_JSON",
        help="execute one instance per entry of a JSON list of input "
        "dicts ({\"var\": scalar-or-array, ...} or null) through the "
        "batched lane engine; results are bit-identical to running "
        "each instance alone (REPRO_NO_BATCH=1 forces the loop)",
    )
    p_run.add_argument(
        "--profile",
        action="store_true",
        help="per-statement simulated-time profile",
    )
    p_run.add_argument(
        "--stats",
        action="store_true",
        help="plan-cache, communication-tier dispatch, frontier-sweep "
        "and kernel-fusion counters (incl. per-sweep active-VP shrink "
        "ratios and fused-segment / charge-table hit counts)",
    )
    p_run.add_argument(
        "--faults",
        metavar="SPEC",
        help="inject hardware faults, e.g. 'kill:3@alu#5;drop@router_send#2' "
        "(see docs/ROBUSTNESS.md); recovery is automatic",
    )
    p_run.add_argument(
        "--fingerprint",
        action="store_true",
        help="print a digest of the Clock cost fingerprint (for engine diffs)",
    )
    p_run.add_argument(
        "--sanitize",
        action="store_true",
        help="cross-check the run against the static analyzer's verdicts "
        "(also via REPRO_SANITIZE=1; see docs/ANALYSIS.md)",
    )
    p_run.add_argument(
        "--shards",
        type=int,
        metavar="K",
        help="partition the machine into K shards joined by an "
        "inter-machine link (the 'intershard' cost tier); results and "
        "fingerprints are bit-identical for every K (REPRO_SHARDS "
        "overrides; see docs/PERFORMANCE.md)",
    )
    p_run.add_argument(
        "--placement",
        choices=("map", "block"),
        help="shard placement policy: 'map' (default) derives the "
        "partition axis from the program's map section; 'block' is the "
        "naive axis-0 banding baseline",
    )
    p_run.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="cancel the run at the next construct boundary once this much "
        f"wall time has elapsed (exit {TIMEOUT_EXIT}, with a "
        "checkpoint-position diagnostic; the execution service's deadline "
        "machinery)",
    )
    p_run.set_defaults(func=cmd_run)

    p_serve = sub.add_parser(
        "serve",
        help="multi-tenant execution service: run a JSON job list on a "
        "bounded worker pool with deadlines, retries, preemption and "
        "crash-durable state (see docs/ROBUSTNESS.md)",
    )
    p_serve.add_argument(
        "jobs",
        nargs="?",
        help="JSON list of job objects ({\"source\"|\"file\", \"defines\", "
        "\"inputs\", \"tenant\", \"seed\", \"deadline\": {\"wall_s\", "
        "\"clock_us\"}, \"faults\", \"retry\": {...}}); optional with "
        "--resume",
    )
    p_serve.add_argument("--workers", type=int, default=4, help="pool size")
    p_serve.add_argument(
        "--max-queue", type=int, default=256, help="admission bound (load-shed past it)"
    )
    p_serve.add_argument(
        "--spool", metavar="DIR", help="journal + snapshots here (crash durability)"
    )
    p_serve.add_argument(
        "--resume",
        metavar="DIR",
        help="recover a crashed service from its spool directory and finish "
        "its in-flight jobs",
    )
    p_serve.add_argument(
        "--slice-us",
        type=float,
        default=None,
        help="preempt a running job after this much simulated time per slice",
    )
    p_serve.add_argument(
        "--chaos",
        type=float,
        default=0.0,
        metavar="P",
        help="probability of forcing a snapshot-preemption at each top-level "
        "boundary (seeded chaos testing)",
    )
    p_serve.add_argument("--seed", type=int, default=0, help="service seed")
    p_serve.add_argument(
        "--budget",
        action="append",
        metavar="TENANT=US",
        help="per-tenant simulated-Clock budget in microseconds (repeatable)",
    )
    p_serve.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable run_batch coalescing of identical queued programs",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_check = sub.add_parser("check", help="parse + semantic analysis only")
    common(p_check)
    p_check.set_defaults(func=cmd_check)

    p_cstar = sub.add_parser("cstar", help="emit C* target source")
    common(p_cstar)
    p_cstar.set_defaults(func=cmd_cstar)

    p_an = sub.add_parser("analyze", help="communication report + map suggestions")
    common(p_an)
    p_an.set_defaults(func=cmd_analyze)

    p_lint = sub.add_parser(
        "lint",
        help="whole-program static analyzer: par races, solve convergence, "
        "communication tiers, hygiene, determinism envelopes "
        "(see docs/ANALYSIS.md)",
    )
    p_lint.add_argument("files", nargs="*", help="UC source file(s)")
    p_lint.add_argument(
        "--explain",
        metavar="UCxxx",
        help="print the code-table entry, severity and fix-it template "
        "for one stable diagnostic code, then lint any given files",
    )
    p_lint.add_argument(
        "-D",
        "--define",
        action="append",
        metavar="NAME=VALUE",
        help="compile-time constant (repeatable)",
    )
    p_lint.add_argument("--no-maps", action="store_true", help="ignore map sections")
    p_lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="diagnostic output format",
    )
    p_lint.add_argument(
        "--werror",
        action="store_true",
        help="exit non-zero on warnings too",
    )
    p_lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
