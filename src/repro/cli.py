"""Command-line front end: run, check, translate and analyse UC programs.

Usage (also via ``python -m repro``):

    repro run program.uc -D N=32 --print a --ledger
    repro check program.uc
    repro cstar program.uc            # emit C* source (paper appendix style)
    repro analyze program.uc          # communication report + map suggestions
    repro lint program.uc             # whole-program static analyzer (uclint)

``run`` executes ``main`` on the simulated CM-2 and reports the final
variables and simulated elapsed time; ``--no-maps`` ignores the program's
map sections (for quick before/after comparisons) and ``--pes`` resizes
the machine.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

import numpy as np

from .compiler.comm_opt import analyze_communication
from .compiler.cstar_gen import generate_cstar
from .compiler.processor_opt import analyze_program as analyze_vp_plans
from .interp.program import UCProgram
from .lang.errors import UCError
from .machine import MachineConfig, MachineError


def _parse_defines(items: Sequence[str]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for item in items:
        if "=" not in item:
            raise SystemExit(f"bad define {item!r}: expected NAME=VALUE")
        name, _, value = item.partition("=")
        try:
            out[name.strip()] = int(value, 0)
        except ValueError:
            raise SystemExit(f"bad define {item!r}: value must be an integer")
    return out


def _load_program(args: argparse.Namespace) -> UCProgram:
    try:
        source = open(args.file).read()
    except OSError as exc:
        raise SystemExit(f"cannot read {args.file}: {exc}")
    config = None
    if getattr(args, "pes", None):
        config = MachineConfig(n_pes=args.pes, name=f"CM (simulated, {args.pes} PEs)")
    try:
        return UCProgram(
            source,
            defines=_parse_defines(getattr(args, "define", []) or []),
            machine_config=config,
            apply_maps=not getattr(args, "no_maps", False),
            faults=getattr(args, "faults", None),
            sanitize=getattr(args, "sanitize", False),
        )
    except UCError as exc:
        raise SystemExit(f"{args.file}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"{args.file}: {exc}")


def _coerce_batch_input(obj, path: str):
    """One JSON params entry -> a run() inputs dict (lists become arrays)."""
    if obj is None:
        return None
    if not isinstance(obj, dict):
        raise SystemExit(f"{path}: each batch entry must be an object or null")
    out = {}
    for name, val in obj.items():
        if isinstance(val, list):
            arr = np.asarray(val)
            if arr.dtype.kind in "iub":
                arr = arr.astype(np.int64)
            elif arr.dtype.kind == "f":
                arr = arr.astype(np.float64)
            else:
                raise SystemExit(
                    f"{path}: {name!r} must be a numeric array or scalar"
                )
            out[name] = arr
        elif isinstance(val, (int, float)):
            out[name] = val
        else:
            raise SystemExit(f"{path}: {name!r} must be a number or an array")
    return out


def _cmd_run_batch(prog: UCProgram, args: argparse.Namespace) -> int:
    import json
    import time

    try:
        with open(args.batch) as fh:
            params = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read batch params {args.batch}: {exc}")
    if not isinstance(params, list) or not params:
        raise SystemExit(f"{args.batch}: expected a non-empty JSON list")
    inputs = [_coerce_batch_input(p, args.batch) for p in params]
    t0 = time.perf_counter()
    try:
        results = prog.run_batch(inputs, seed=args.seed)
    except UCError as exc:
        raise SystemExit(f"{args.file}: runtime error: {exc}")
    except MachineError as exc:
        raise SystemExit(f"{args.file}: machine fault: {exc}")
    wall_ms = (time.perf_counter() - t0) * 1e3
    for i, result in enumerate(results):
        if result.stdout:
            sys.stdout.write(result.stdout)
        for name in args.print or []:
            if name not in result:
                raise SystemExit(f"no variable named {name!r} in the program")
            value = result[name]
            if isinstance(value, np.ndarray):
                with np.printoptions(threshold=64, linewidth=100):
                    print(f"[{i}] {name} = {value}")
            else:
                print(f"[{i}] {name} = {value}")
        line = (
            f"-- lane {i}: simulated elapsed "
            f"{result.elapsed_us / 1e3:.3f} ms"
        )
        if getattr(args, "fingerprint", False):
            import hashlib

            digest = hashlib.sha256(
                repr(result.fingerprint).encode()
            ).hexdigest()
            line += f"  fingerprint {digest[:16]}"
        print(line)
    batched = results[-1].compile.get("batched_lanes", 0.0)
    mode = (
        f"batched x{int(batched)} lanes" if batched else "sequential fallback"
    )
    print(
        f"-- batch: {len(results)} instances in {wall_ms:.1f} ms wall ({mode})"
    )
    if args.stats:
        _print_stats(prog, results[-1])
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    prog = _load_program(args)
    if getattr(args, "batch", None):
        if args.profile:
            raise SystemExit("--profile is not supported with --batch")
        return _cmd_run_batch(prog, args)
    try:
        result = prog.run(seed=args.seed, profile=args.profile)
    except UCError as exc:
        raise SystemExit(f"{args.file}: runtime error: {exc}")
    except MachineError as exc:
        raise SystemExit(f"{args.file}: machine fault: {exc}")
    if result.stdout:
        sys.stdout.write(result.stdout)
    names = args.print or sorted(result.keys())
    for name in names:
        if name not in result:
            raise SystemExit(f"no variable named {name!r} in the program")
        value = result[name]
        if isinstance(value, np.ndarray):
            with np.printoptions(threshold=64, linewidth=100):
                print(f"{name} = {value}")
        else:
            print(f"{name} = {value}")
    print(f"-- simulated elapsed: {result.elapsed_us / 1e3:.3f} ms "
          f"({result.elapsed_us:.0f} us)")
    if getattr(args, "fingerprint", False):
        import hashlib

        digest = hashlib.sha256(repr(result.fingerprint).encode()).hexdigest()
        print(f"-- clock fingerprint: {digest[:16]}")
    if args.ledger:
        print("-- instruction ledger:")
        for kind in sorted(result.counts):
            print(
                f"   {kind:16s} x{result.counts[kind]:<8d} "
                f"{result.times[kind]:12.0f} us"
            )
    if args.profile and result.profile:
        print("-- per-statement profile (simulated):")
        for label, us in sorted(result.profile.items(), key=lambda kv: -kv[1]):
            share = 100.0 * us / max(result.elapsed_us, 1e-9)
            print(f"   {us/1e3:10.2f} ms  {share:5.1f}%  {label}")
    if args.stats:
        _print_stats(prog, result)
    return 0


def _print_stats(prog: UCProgram, result) -> None:
        interp = prog.last_interpreter
        assert interp is not None
        print("-- execution stats:")
        if result.compile:
            # wall-clock compile/execute breakdown for this run: *_s keys
            # are seconds; recompiles counts plan-cache misses during the
            # run (a warm compile store shows everything as zero)
            for key in sorted(result.compile):
                value = result.compile[key]
                if key.endswith("_s"):
                    print(f"   compile.{key:16s} {value * 1e3:10.3f} ms")
                else:
                    print(f"   compile.{key:16s} {value:g}")
        if result.store:
            for key in sorted(result.store):
                print(f"   store.{key:18s} {result.store[key]}")
        cache = getattr(interp, "plan_cache", None)
        if cache is not None:
            for key, value in sorted(cache.stats().items()):
                print(f"   plan_cache.{key:12s} {value}")
        tiers = interp.machine.clock.tier_counts
        if tiers:
            for tier in sorted(tiers):
                print(f"   tier.{tier:18s} x{tiers[tier]}")
        else:
            print("   tier dispatches: none (no remote references)")
        if result.frontier:
            for key in sorted(result.frontier):
                print(f"   frontier.{key:18s} {result.frontier[key]}")
            if result.frontier_trace:
                shrinks = " ".join(
                    f"{active}/{domain}"
                    for active, domain in result.frontier_trace
                )
                total_a = sum(a for a, _d in result.frontier_trace)
                total_d = sum(d for _a, d in result.frontier_trace)
                print(f"   frontier.sweeps (active/domain VPs): {shrinks}")
                if total_d:
                    print(
                        "   frontier.shrink "
                        f"{100.0 * total_a / total_d:.1f}% of full-sweep VPs"
                    )
        if result.fusion:
            for key in sorted(result.fusion):
                print(f"   fusion.{key:18s} {result.fusion[key]}")
        if result.recovery:
            for key in sorted(result.recovery):
                print(f"   recovery.{key:14s} {result.recovery[key]}")
        if result.sanitizer:
            s = result.sanitizer
            print(
                "   sanitizer: "
                f"{s['writes_checked']} scatters checked "
                f"({s['duplicate_writes']} benign duplicates), "
                f"{s['tier_sites_verified']}/{s['tier_sites_observed']} "
                "tier sites verified, 0 contradictions"
            )
        for t_us, kind, op in result.fault_log:
            print(f"   fault: {kind} during {op!r} at t={t_us:.0f}us")
        if result.dead_pes:
            print(f"   dead PEs: {result.dead_pes}")


def cmd_check(args: argparse.Namespace) -> int:
    prog = _load_program(args)
    n_arrays = len(prog.info.arrays)
    n_sets = len(prog.info.index_sets)
    print(
        f"{args.file}: OK ({n_sets} index sets, {n_arrays} arrays, "
        f"{len(prog.info.functions)} functions, "
        f"{len(prog.layouts.non_canonical())} mapped arrays)"
    )
    return 0


def cmd_cstar(args: argparse.Namespace) -> int:
    prog = _load_program(args)
    print(generate_cstar(prog.info, prog.layouts))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    prog = _load_program(args)
    report = analyze_communication(prog.info, prog.layouts)
    print(f"{args.file}: {len(report.references)} parallel array references")
    for ref in report.references:
        note = f"  ({ref.note})" if ref.note else ""
        print(f"  line {ref.line:4d}  {ref.kind:9s}  {ref.text}{note}")
    if report.suggestions:
        print("suggestions:")
        for s in report.suggestions:
            print(f"  - {s}")
    plans = [p for p in analyze_vp_plans(prog.info) if p.partitioned]
    for p in plans:
        print(
            f"processor optimization: reduction at line {p.line} needs "
            f"{p.optimized_vps} VPs (naive: {p.naive_vps})"
        )
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import lint_program

    defines = _parse_defines(args.define or [])
    worst = 0
    json_reports: List[str] = []
    for path in args.files:
        try:
            source = open(path).read()
        except OSError as exc:
            raise SystemExit(f"cannot read {path}: {exc}")
        report = lint_program(
            source,
            defines=defines,
            apply_maps=not args.no_maps,
            filename=path,
        )
        if args.format == "json":
            json_reports.append(report.render_json())
        else:
            print(report.render_text())
        worst = max(worst, report.exit_code(werror=args.werror))
    if args.format == "json":
        if len(json_reports) == 1:
            print(json_reports[0])
        else:
            print("[" + ",\n".join(json_reports) + "]")
    return worst


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UC language tools on a simulated Connection Machine",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("file", help="UC source file")
        p.add_argument(
            "-D",
            "--define",
            action="append",
            metavar="NAME=VALUE",
            help="compile-time constant (repeatable)",
        )
        p.add_argument("--no-maps", action="store_true", help="ignore map sections")
        p.add_argument("--pes", type=int, help="physical processors (default 16384)")

    p_run = sub.add_parser("run", help="execute main on the simulator")
    common(p_run)
    p_run.add_argument("--seed", type=int, default=20250704, help="RNG seed")
    p_run.add_argument(
        "--print", action="append", metavar="VAR", help="variable(s) to print"
    )
    p_run.add_argument("--ledger", action="store_true", help="print the cost ledger")
    p_run.add_argument(
        "--batch",
        metavar="PARAMS_JSON",
        help="execute one instance per entry of a JSON list of input "
        "dicts ({\"var\": scalar-or-array, ...} or null) through the "
        "batched lane engine; results are bit-identical to running "
        "each instance alone (REPRO_NO_BATCH=1 forces the loop)",
    )
    p_run.add_argument(
        "--profile",
        action="store_true",
        help="per-statement simulated-time profile",
    )
    p_run.add_argument(
        "--stats",
        action="store_true",
        help="plan-cache, communication-tier dispatch, frontier-sweep "
        "and kernel-fusion counters (incl. per-sweep active-VP shrink "
        "ratios and fused-segment / charge-table hit counts)",
    )
    p_run.add_argument(
        "--faults",
        metavar="SPEC",
        help="inject hardware faults, e.g. 'kill:3@alu#5;drop@router_send#2' "
        "(see docs/ROBUSTNESS.md); recovery is automatic",
    )
    p_run.add_argument(
        "--fingerprint",
        action="store_true",
        help="print a digest of the Clock cost fingerprint (for engine diffs)",
    )
    p_run.add_argument(
        "--sanitize",
        action="store_true",
        help="cross-check the run against the static analyzer's verdicts "
        "(also via REPRO_SANITIZE=1; see docs/ANALYSIS.md)",
    )
    p_run.set_defaults(func=cmd_run)

    p_check = sub.add_parser("check", help="parse + semantic analysis only")
    common(p_check)
    p_check.set_defaults(func=cmd_check)

    p_cstar = sub.add_parser("cstar", help="emit C* target source")
    common(p_cstar)
    p_cstar.set_defaults(func=cmd_cstar)

    p_an = sub.add_parser("analyze", help="communication report + map suggestions")
    common(p_an)
    p_an.set_defaults(func=cmd_analyze)

    p_lint = sub.add_parser(
        "lint",
        help="whole-program static analyzer: par races, solve convergence, "
        "communication tiers, hygiene (see docs/ANALYSIS.md)",
    )
    p_lint.add_argument("files", nargs="+", help="UC source file(s)")
    p_lint.add_argument(
        "-D",
        "--define",
        action="append",
        metavar="NAME=VALUE",
        help="compile-time constant (repeatable)",
    )
    p_lint.add_argument("--no-maps", action="store_true", help="ignore map sections")
    p_lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="diagnostic output format",
    )
    p_lint.add_argument(
        "--werror",
        action="store_true",
        help="exit non-zero on warnings too",
    )
    p_lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
