"""Resilient multi-tenant execution service (``repro serve``).

In-process API::

    from repro.service import ExecutionService, JobSpec, ServiceConfig

    svc = ExecutionService(ServiceConfig(workers=4))
    job = svc.submit(JobSpec(source=UC_SOURCE, tenant="alice"))
    results = svc.drain()
    assert results[job].ok and not svc.lost_jobs()

See ``docs/ROBUSTNESS.md`` ("Service-level guarantees") for the
failure-mode × guarantee table.
"""

from ..interp.deadline import Deadline, UCDeadlineError
from .admission import AdmissionController
from .jobstate import (
    DONE,
    FAILED,
    QUEUED,
    REJECTED,
    RETRY_WAIT,
    RUNNING,
    SUSPENDED,
    Job,
    JobResult,
    JobSpec,
    RetryPolicy,
)
from .persist import Spool
from .scheduler import ExecutionService, ServiceConfig
from .worker import Worker

__all__ = [
    "AdmissionController",
    "Deadline",
    "ExecutionService",
    "Job",
    "JobResult",
    "JobSpec",
    "RetryPolicy",
    "ServiceConfig",
    "Spool",
    "UCDeadlineError",
    "Worker",
    "DONE",
    "FAILED",
    "QUEUED",
    "REJECTED",
    "RETRY_WAIT",
    "RUNNING",
    "SUSPENDED",
]
