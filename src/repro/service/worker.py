"""One worker: a slot in the bounded pool of simulated machines.

A worker holds at most one resident job — a
:class:`~repro.interp.program.PreparedRun` whose simulated machine stays
alive between slices — so the pool's ``workers`` setting is a hard bound
on simultaneously allocated machines.  :meth:`run_slice` drives the
resident job's resumable runner until one of four outcomes:

* ``done`` — ``main`` completed; the packaged RunResult rides along;
* ``yielded`` — the slice budget expired with nobody waiting for the
  worker: the job stays resident (machine intact) and the next slice
  continues from ``job.pc`` — cooperative time-slicing without paying
  for a snapshot;
* ``preempted`` — a queued job needs the machine (or chaos injection
  elected it): the job captured a portable snapshot at a top-level
  boundary and leaves the worker;
* ``error`` — the job raised.  *Any* exception (UC error, recovery
  exhaustion after a fault storm, OOM-sized allocation, sanitizer
  contradiction, deadline) is caught here and reported as data — the
  fault domain is the job, never the pool.

Preemption and deadline cancellation both happen only at safe points
(top-level statement boundaries / construct sweep boundaries), so a job
observed by a snapshot is always in a state an uninterrupted run passes
through — the fingerprint-identity guarantee rests on that.
"""

from __future__ import annotations

import time
from typing import Any, Optional

import numpy as np

from ..interp.checkpoint import SnapshotUnsupported, install_portable, take_portable
from ..interp.deadline import DeadlineMonitor, JobPreempted
from .jobstate import Job, RUNNING


class SliceOutcome:
    """What one slice of execution produced."""

    __slots__ = ("kind", "run", "snapshot", "exc")

    def __init__(self, kind: str, *, run=None, snapshot=None, exc=None) -> None:
        self.kind = kind  # 'done' | 'yielded' | 'preempted' | 'error'
        self.run = run
        self.snapshot = snapshot
        self.exc = exc


class Worker:
    def __init__(self, service, index: int) -> None:
        self.service = service
        self.index = index
        self.job: Optional[Job] = None

    @property
    def free(self) -> bool:
        return self.job is None

    def assign(self, job: Job) -> None:
        """Load a job onto this worker: compile (shared store), build the
        machine, and — when resuming — install its portable snapshot.

        Raises whatever the program raises (parse/semantic errors,
        OOM-sized grids); the scheduler converts that into a structured
        per-job failure.
        """
        svc = self.service
        spec = job.spec
        prog = svc.program_for(spec)
        plan = spec.fault_plan_for_attempt(job.attempt)
        pr = prog.prepare(
            spec.inputs if job.snapshot is None else None,
            seed=spec.seed,
            faults=plan,
            recovery=spec.recovery,
        )
        if job.snapshot is not None:
            install_portable(pr.interp, pr.context, job.snapshot)
            job.pc = job.snapshot.pc
            job.snapshot = None
        else:
            job.pc = 0
        job.prepared = pr
        if job.monitor is None:
            d = spec.deadline
            metered = svc.admission.budgets.get(spec.tenant) is not None
            if d is not None or metered:
                job.monitor = DeadlineMonitor(
                    wall_s=d.wall_s if d is not None else None,
                    clock_us=d.clock_us if d is not None else None,
                )
        job.state = RUNNING
        self.job = job

    def release(self) -> Job:
        job = self.job
        assert job is not None
        job.prepared = None
        self.job = None
        return job

    def run_slice(self) -> SliceOutcome:
        """Run the resident job until done / yield / preempt / error."""
        svc = self.service
        job = self.job
        assert job is not None and job.prepared is not None
        pr = job.prepared
        ip = pr.interp
        monitor = job.monitor
        if monitor is not None:
            ip.deadline = monitor
            # the tenant's unspent budget right now; other jobs finishing
            # shrink it between this job's slices
            monitor.budget_us = svc.admission.remaining_budget_us(job.spec.tenant)
            monitor.begin()
        job.slice_count += 1
        start_pc = job.pc
        slice_start_us = ip.machine.clock.time_us
        slice_us = svc.config.preempt_slice_us
        chaos_p = svc.config.preempt_probability
        chaos_rng = (
            np.random.default_rng((svc.config.seed, job.num, job.slice_count))
            if chaos_p > 0.0
            else None
        )
        # static within the slice: the scheduler is single-threaded
        others_waiting = bool(svc.queue)

        def boundary(pc: int) -> None:
            job.pc = pc
            if pc <= start_pc:
                return  # always make progress: >= 1 statement per slice
            over_budget = (
                slice_us is not None
                and ip.machine.clock.time_us - slice_start_us >= slice_us
            )
            chaos = chaos_rng is not None and chaos_rng.random() < chaos_p
            if not over_budget and not chaos:
                return
            if over_budget and not others_waiting and not chaos:
                # nobody needs the machine: yield in place, snapshot-free
                raise JobPreempted(None)
            try:
                snap = take_portable(ip, pr.context, pc)
            except SnapshotUnsupported:
                return  # not capturable here; keep running to the next one
            raise JobPreempted(snap)

        t0 = time.perf_counter()
        try:
            ip.run_main_from(pr.context, start_pc, boundary)
        except JobPreempted as signal:
            if signal.snapshot is None:
                return SliceOutcome("yielded")
            return SliceOutcome("preempted", snapshot=signal.snapshot)
        except Exception as exc:  # noqa: BLE001 — isolation: job fails, pool survives
            return SliceOutcome("error", exc=exc)
        else:
            try:
                run = pr.finish()
            except Exception as exc:  # sanitizer cross-check, result packaging
                return SliceOutcome("error", exc=exc)
            return SliceOutcome("done", run=run)
        finally:
            if monitor is not None:
                monitor.pause()
            pr.execute_s += time.perf_counter() - t0
