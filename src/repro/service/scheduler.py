"""The execution service: a cooperative multi-tenant scheduler.

:class:`ExecutionService` accepts many UC jobs (:meth:`submit`), runs
them on a bounded pool of simulated machines (:class:`~repro.service
.worker.Worker`), and guarantees every submitted job exactly one
structured terminal result.  Scheduling is cooperative and
single-threaded — :meth:`step` performs one round (promote retry
waiters, fill free workers, run one slice per busy worker), and
:meth:`drain` loops it to quiescence — which keeps the whole service
deterministic for a given config seed: the chaos tests replay it.

Robustness layers, from the ISSUE:

* **isolation** — worker slices catch everything; a failing job becomes
  a FAILED result with a structured error, and the pool keeps serving;
* **deadlines / budgets** — each job's DeadlineMonitor rides along on
  the interpreter and cancels at construct boundaries; per-tenant Clock
  budgets are re-armed on it every slice;
* **retry/backoff** — fault-rooted failures re-run (fresh attempt,
  per-attempt fault plan, seeded exponential backoff), and
  ``verify_replays`` audits recovered jobs against a clean replay's
  fingerprint;
* **preemption** — under contention (or chaos injection) jobs suspend
  into portable snapshots and resume later, possibly on a different
  worker, with fingerprints identical to uninterrupted runs;
* **crash durability** — with a spool directory, submits, suspends and
  terminals journal to disk; :meth:`resume` replays the journal and
  re-enqueues every in-flight job from its newest snapshot;
* **coalescing** — identical queued programs (same source, defines,
  seed; no faults/deadline/snapshot) ride one ``run_batch`` call, whose
  per-lane fingerprints PR 7 guarantees bit-identical to solo runs.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..interp.batch import batchable
from ..interp.compile_store import CompileStore
from .admission import AdmissionController
from .jobstate import (
    DONE,
    FAILED,
    QUEUED,
    REJECTED,
    RETRY_WAIT,
    SUSPENDED,
    Job,
    JobResult,
    JobSpec,
    RetryPolicy,
    retriable,
    structured_error,
)
from .persist import Spool, fingerprint_from_json, fingerprint_to_json
from .worker import SliceOutcome, Worker


@dataclass
class ServiceConfig:
    """Pool shape, scheduling and robustness knobs."""

    #: max simultaneously resident jobs (simulated machines alive)
    workers: int = 4
    #: admission bound on in-flight jobs; beyond it, load-shed
    max_queue: int = 256
    #: coalesce identical queued programs into run_batch lanes
    coalesce: bool = True
    #: max lanes one coalesced batch may carry
    max_lanes: int = 64
    #: preempt/yield a resident job after this much simulated time per
    #: slice (None: jobs run to completion once scheduled)
    preempt_slice_us: Optional[float] = None
    #: chaos: probability of forcing a snapshot-preemption at each
    #: top-level boundary (seeded; 0 disables)
    preempt_probability: float = 0.0
    #: seeds chaos preemption and retry jitter
    seed: int = 0
    #: crash-durability directory (None: in-memory only)
    spool_dir: Optional[str] = None
    #: per-tenant simulated-Clock budgets (absent tenants unmetered)
    tenant_budget_us: Optional[Dict[str, float]] = None
    #: retry policy for specs that do not carry their own
    default_retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: machine description shared by all pool machines (None: default CM-2)
    machine_config: Any = None
    #: compile store shared across jobs (None: one private store)
    compile_store: Optional[CompileStore] = None


class ExecutionService:
    """See the module docstring.  In-process API; ``repro serve`` wraps it."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.store = self.config.compile_store or CompileStore()
        self.admission = AdmissionController(
            max_queue=self.config.max_queue,
            tenant_budget_us=self.config.tenant_budget_us,
        )
        self.jobs: Dict[str, Job] = {}
        self.queue: "deque[str]" = deque()  # QUEUED/SUSPENDED ids awaiting a worker
        self.workers: List[Worker] = [
            Worker(self, i) for i in range(max(1, self.config.workers))
        ]
        self.spool: Optional[Spool] = (
            Spool(self.config.spool_dir) if self.config.spool_dir else None
        )
        self._next_id = 1
        self._rr = 0  # round-robin cursor over workers
        self.stats: Dict[str, int] = {
            "submitted": 0,
            "done": 0,
            "failed": 0,
            "rejected": 0,
            "preemptions": 0,
            "yields": 0,
            "retries": 0,
            "replays_verified": 0,
            "batches": 0,
            "coalesced_lanes": 0,
        }

    # -- submission ----------------------------------------------------------

    def submit(self, spec: JobSpec) -> str:
        """Admit one job; always returns its id.  A shed job is DONE
        deciding immediately: its REJECTED result is already available."""
        job_id = f"j{self._next_id}"
        self._next_id += 1
        job = Job(job_id, spec, spec.retry or self.config.default_retry)
        job.submitted_at = time.monotonic()
        self.jobs[job_id] = job
        self.stats["submitted"] += 1
        in_flight = sum(1 for j in self.jobs.values() if not j.terminal)
        reason = self.admission.admit(job, in_flight - 1)
        if reason is not None:
            job.state = REJECTED
            job.result = JobResult(
                job_id=job_id,
                tenant=spec.tenant,
                state=REJECTED,
                error={"type": "AdmissionRejected", "reason": reason},
            )
            self.stats["rejected"] += 1
            if self.spool is not None:
                # journal the shed submission too: resume() must not
                # resurrect it
                spec_file = self.spool.save_spec(job_id, spec)
                self.spool.append(
                    {"ev": "submit", "job": job_id, "tenant": spec.tenant,
                     "spec": spec_file},
                    sync=False,
                )
                self.spool.append(
                    {"ev": REJECTED, "job": job_id, "reason": reason}
                )
            return job_id
        if self.spool is not None:
            spec_file = self.spool.save_spec(job_id, spec)
            self.spool.append(
                {"ev": "submit", "job": job_id, "tenant": spec.tenant,
                 "spec": spec_file}
            )
        self.queue.append(job_id)
        return job_id

    # -- scheduling ----------------------------------------------------------

    def step(self) -> bool:
        """One cooperative round; True if any job made progress."""
        did = False
        now = time.monotonic()
        # promote retry waiters whose backoff expired
        for job in self.jobs.values():
            if job.state == RETRY_WAIT and now >= job.not_before:
                job.state = QUEUED
                self.queue.append(job.id)
        # fill free workers (coalescing identical programs when possible)
        for worker in self.workers:
            if not worker.free or not self.queue:
                continue
            job = self.jobs[self.queue.popleft()]
            lanes = self._coalesce_lanes(job)
            if lanes is not None:
                self._run_coalesced(lanes)
                did = True
                continue
            try:
                worker.assign(job)
            except Exception as exc:  # compile error, OOM-sized grid, ...
                self._fail_or_retry(job, exc)
                did = True
        # one slice per busy worker, round-robin start for fairness
        n = len(self.workers)
        for k in range(n):
            worker = self.workers[(self._rr + k) % n]
            if worker.free:
                continue
            outcome = worker.run_slice()
            self._handle_outcome(worker, outcome)
            did = True
        self._rr = (self._rr + 1) % n
        return did

    def drain(self, *, max_wall_s: Optional[float] = None) -> Dict[str, JobResult]:
        """Run until every submitted job is terminal; returns all results."""
        t0 = time.monotonic()
        while True:
            pending = [j for j in self.jobs.values() if not j.terminal]
            if not pending:
                return self.results()
            if max_wall_s is not None and time.monotonic() - t0 > max_wall_s:
                raise TimeoutError(
                    f"drain exceeded {max_wall_s}s with "
                    f"{len(pending)} jobs pending"
                )
            if not self.step():
                waits = [
                    j.not_before - time.monotonic()
                    for j in pending
                    if j.state == RETRY_WAIT
                ]
                if not waits:  # pragma: no cover — would be a scheduler bug
                    raise RuntimeError(
                        f"scheduler stalled with {len(pending)} jobs pending"
                    )
                time.sleep(min(0.05, max(0.0, min(waits))))

    def results(self) -> Dict[str, JobResult]:
        return {
            job_id: job.result
            for job_id, job in self.jobs.items()
            if job.result is not None
        }

    def result(self, job_id: str) -> Optional[JobResult]:
        return self.jobs[job_id].result

    def lost_jobs(self) -> List[str]:
        """Submitted jobs with no terminal result — must be [] after a
        drain; the chaos suite asserts it across kill/resume too."""
        return [
            job_id
            for job_id, job in self.jobs.items()
            if not job.terminal or job.result is None
        ]

    # -- internals -----------------------------------------------------------

    def program_for(self, spec: JobSpec):
        """The shared program object for a spec (content-coalesced)."""
        return self.store.shared_program(
            spec.source,
            defines=spec.defines,
            machine_config=self.config.machine_config,
        )

    def _coalesce_key(self, job: Job):
        spec = job.spec
        if (
            not self.config.coalesce
            or job.attempt != 1
            or job.snapshot is not None
            or job.pc != 0
            or spec.faults is not None
            or spec.deadline is not None
            or spec.recovery is not None
            # budget enforcement rides the worker's DeadlineMonitor, which
            # coalesced batches bypass — metered tenants go solo
            or self.admission.budgets.get(spec.tenant) is not None
        ):
            return None
        return (spec.source, tuple(sorted(spec.defines.items())), spec.seed)

    def _coalesce_lanes(self, job: Job) -> Optional[List[Job]]:
        """Jobs from the queue that can ride one run_batch with ``job``."""
        key = self._coalesce_key(job)
        if key is None:
            return None
        try:
            prog = self.program_for(job.spec)
        except Exception:
            return None  # let the solo path report the compile failure
        if not batchable(prog):
            return None
        lanes = [job]
        kept: "deque[str]" = deque()
        while self.queue and len(lanes) < self.config.max_lanes:
            other = self.jobs[self.queue.popleft()]
            if self._coalesce_key(other) == key:
                lanes.append(other)
            else:
                kept.append(other.id)
        self.queue.extendleft(reversed(kept))
        if len(lanes) < 2:
            # nothing to share; put the job back on the solo path
            return None if lanes == [job] else lanes
        return lanes

    def _run_coalesced(self, lanes: List[Job]) -> None:
        """Run coalesced jobs as run_batch lanes (bit-identical to solo)."""
        prog = self.program_for(lanes[0].spec)
        self.stats["batches"] += 1
        self.stats["coalesced_lanes"] += len(lanes)
        try:
            runs = prog.run_batch(
                [job.spec.inputs for job in lanes], seed=lanes[0].spec.seed
            )
        except Exception:
            # one bad lane must not sink its neighbours: isolate by
            # falling back to solo runs (deterministic, so the failing
            # lane reproduces its exact error)
            for job in lanes:
                try:
                    run = prog.run(job.spec.inputs, seed=job.spec.seed)
                except Exception as exc:
                    self._fail_or_retry(job, exc)
                else:
                    self._on_done(job, run)
            return
        for job, run in zip(lanes, runs):
            self._on_done(job, run)

    def _handle_outcome(self, worker: Worker, outcome: SliceOutcome) -> None:
        job = worker.job
        assert job is not None
        if outcome.kind == "yielded":
            self.stats["yields"] += 1
            job.state = SUSPENDED  # resident on the worker, machine alive
            return
        if outcome.kind == "preempted":
            worker.release()
            job.snapshot = outcome.snapshot
            job.pc = outcome.snapshot.pc
            job.preemptions += 1
            self.stats["preemptions"] += 1
            job.state = SUSPENDED
            if self.spool is not None:
                snap_file = self.spool.save_snapshot(
                    job.id, job.preemptions, outcome.snapshot
                )
                self.spool.append(
                    {
                        "ev": "suspend",
                        "job": job.id,
                        "snapshot": snap_file,
                        "pc": job.pc,
                        "attempt": job.attempt,
                        "wall_used_s": (
                            job.monitor.wall_used_s if job.monitor else 0.0
                        ),
                        "preemptions": job.preemptions,
                    }
                )
            self.queue.append(job.id)
            return
        clock_us = 0.0
        if job.prepared is not None:
            clock_us = job.prepared.machine.clock.time_us
        worker.release()
        if outcome.kind == "error":
            self._fail_or_retry(job, outcome.exc, clock_us=clock_us)
        else:
            self._on_done(job, outcome.run)

    def _fail_or_retry(
        self, job: Job, exc: BaseException, *, clock_us: float = 0.0
    ) -> None:
        if retriable(exc) and job.attempt < job.retry.max_attempts:
            failed_attempt = job.attempt
            job.attempt += 1
            job.snapshot = None
            job.pc = 0
            job.prepared = None
            self.stats["retries"] += 1
            delay = job.retry.backoff_s(
                failed_attempt, seed=(self.config.seed, job.num)
            )
            job.not_before = time.monotonic() + delay
            if self.spool is not None:
                self.spool.append(
                    {"ev": "attempt", "job": job.id, "attempt": job.attempt}
                )
            if delay <= 0.0:
                job.state = QUEUED
                self.queue.append(job.id)
            else:
                job.state = RETRY_WAIT
            return
        job.state = FAILED
        job.prepared = None
        job.result = JobResult(
            job_id=job.id,
            tenant=job.spec.tenant,
            state=FAILED,
            attempts=job.attempt,
            preemptions=job.preemptions,
            clock_us=clock_us,
            wall_s=time.monotonic() - job.submitted_at,
            error=structured_error(exc),
        )
        self.stats["failed"] += 1
        self.admission.charge(job.spec.tenant, clock_us)
        if self.spool is not None:
            self.spool.append(
                {
                    "ev": FAILED,
                    "job": job.id,
                    "error": job.result.error,
                    "attempts": job.attempt,
                    "clock_us": clock_us,
                }
            )

    def _on_done(self, job: Job, run) -> None:
        if job.retry.verify_replays and job.attempt > 1:
            # determinism audit: the recovered job's fingerprint must be
            # reproducible by a fresh run of the same final configuration
            prog = self.program_for(job.spec)
            replay = prog.run(
                job.spec.inputs,
                seed=job.spec.seed,
                faults=job.spec.fault_plan_for_attempt(job.attempt),
                recovery=job.spec.recovery,
            )
            self.stats["replays_verified"] += 1
            if replay.fingerprint != run.fingerprint:
                self._fail_or_retry(
                    job,
                    RuntimeError(
                        "fingerprint-verified replay diverged: "
                        f"{run.fingerprint[0]:.0f}us vs "
                        f"{replay.fingerprint[0]:.0f}us"
                    ),
                    clock_us=run.elapsed_us,
                )
                return
        job.state = DONE
        job.prepared = None
        job.result = JobResult(
            job_id=job.id,
            tenant=job.spec.tenant,
            state=DONE,
            attempts=job.attempt,
            preemptions=job.preemptions,
            run=run,
            fingerprint=run.fingerprint,
            clock_us=run.elapsed_us,
            wall_s=time.monotonic() - job.submitted_at,
        )
        self.stats["done"] += 1
        self.admission.charge(job.spec.tenant, run.elapsed_us)
        if self.spool is not None:
            result_file = self.spool.save_result(job.id, run)
            self.spool.append(
                {
                    "ev": DONE,
                    "job": job.id,
                    "fingerprint": fingerprint_to_json(run.fingerprint),
                    "clock_us": run.elapsed_us,
                    "attempts": job.attempt,
                    "preemptions": job.preemptions,
                    "result": result_file,
                }
            )

    # -- crash recovery ------------------------------------------------------

    @classmethod
    def resume(
        cls, spool_dir: str, config: Optional[ServiceConfig] = None
    ) -> "ExecutionService":
        """Rebuild a service from a spool directory after a crash.

        Terminal jobs come back with their journalled results (values
        reloadable from the spool); every in-flight job is re-enqueued
        from its newest journalled snapshot — or from scratch if it
        never suspended — and will finish with the same fingerprint an
        uninterrupted run produces.
        """
        config = config or ServiceConfig()
        config.spool_dir = spool_dir
        svc = cls(config)
        assert svc.spool is not None
        records, spent = svc.spool.scan()
        for tenant, used in spent.items():
            svc.admission.spent[tenant] = (
                svc.admission.spent.get(tenant, 0.0) + used
            )
        max_num = 0
        for job_id in sorted(records, key=lambda j: int(j[1:])):
            rec = records[job_id]
            max_num = max(max_num, int(job_id[1:]))
            spec = svc.spool.load_spec(rec["spec_file"])
            job = Job(job_id, spec, spec.retry or config.default_retry)
            job.submitted_at = time.monotonic()
            job.attempt = rec["attempt"]
            job.preemptions = rec["preemptions"]
            svc.jobs[job_id] = job
            svc.stats["submitted"] += 1
            terminal = rec["terminal"]
            if terminal is not None:
                job.state = rec["state"]
                job.result = JobResult(
                    job_id=job_id,
                    tenant=spec.tenant,
                    state=rec["state"],
                    attempts=terminal.get("attempts", job.attempt),
                    preemptions=terminal.get("preemptions", job.preemptions),
                    fingerprint=fingerprint_from_json(
                        terminal.get("fingerprint")
                    ),
                    clock_us=terminal.get("clock_us", 0.0),
                    error=terminal.get("error")
                    or (
                        {"type": "AdmissionRejected",
                         "reason": terminal.get("reason")}
                        if rec["state"] == REJECTED
                        else None
                    ),
                )
                svc.stats[rec["state"]] += 1
                continue
            if rec["snapshot_file"] is not None:
                job.snapshot = svc.spool.load_snapshot(rec["snapshot_file"])
                job.pc = job.snapshot.pc
                from ..interp.deadline import DeadlineMonitor

                d = spec.deadline
                if d is not None or rec["wall_used_s"]:
                    job.monitor = DeadlineMonitor(
                        wall_s=d.wall_s if d is not None else None,
                        clock_us=d.clock_us if d is not None else None,
                        wall_used_s=rec["wall_used_s"],
                    )
            job.state = QUEUED
            svc.queue.append(job_id)
        svc._next_id = max_num + 1
        return svc
