"""Admission control: bounded queue + per-tenant simulated-Clock quotas.

Overload is handled by *load shedding at the door*, never by letting
queued work time out: a submission that would push the queue past
``max_queue`` is rejected immediately with a structured reason, so the
tenant knows at submit time rather than after a deadline.  Tenant
budgets meter the one resource the simulator actually models — simulated
Clock microseconds — across all of a tenant's jobs: exhausted tenants
are rejected at admission, and a job that exhausts the budget *mid-run*
is cancelled at the next construct boundary by its deadline monitor
(``reason="budget"``, distinct from the job's own deadline).
"""

from __future__ import annotations

from typing import Dict, Optional

from .jobstate import Job

#: structured rejection reasons
QUEUE_FULL = "queue_full"
BUDGET_EXHAUSTED = "budget_exhausted"


class AdmissionController:
    """Decides, at submit time, whether a job may enter the queue."""

    def __init__(
        self,
        *,
        max_queue: int = 256,
        tenant_budget_us: Optional[Dict[str, float]] = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.max_queue = max_queue
        #: tenant -> total simulated us the tenant may consume (absent
        #: tenants are unmetered)
        self.budgets: Dict[str, float] = dict(tenant_budget_us or {})
        #: tenant -> simulated us charged by terminal jobs so far
        self.spent: Dict[str, float] = {}
        self.rejections: Dict[str, int] = {QUEUE_FULL: 0, BUDGET_EXHAUSTED: 0}

    def admit(self, job: Job, queued_now: int) -> Optional[str]:
        """None to admit, or a structured rejection reason."""
        if queued_now >= self.max_queue:
            self.rejections[QUEUE_FULL] += 1
            return QUEUE_FULL
        remaining = self.remaining_budget_us(job.spec.tenant)
        if remaining is not None and remaining <= 0.0:
            self.rejections[BUDGET_EXHAUSTED] += 1
            return BUDGET_EXHAUSTED
        return None

    def remaining_budget_us(self, tenant: str) -> Optional[float]:
        """Unspent budget, or None for an unmetered tenant."""
        budget = self.budgets.get(tenant)
        if budget is None:
            return None
        return budget - self.spent.get(tenant, 0.0)

    def charge(self, tenant: str, clock_us: float) -> None:
        """Account a terminal job's simulated time against its tenant."""
        if clock_us > 0.0:
            self.spent[tenant] = self.spent.get(tenant, 0.0) + clock_us
