"""Job model for the execution service: specs, states, results.

A :class:`JobSpec` is everything a tenant submits; a :class:`Job` is the
service's mutable record of one spec moving through the state machine::

    QUEUED ──▶ RUNNING ──▶ DONE
      ▲           │ ├────▶ FAILED
      │           │ └────▶ RETRY_WAIT ──▶ QUEUED
      └─ SUSPENDED ◀┘ (preemption snapshot)

plus REJECTED, assigned at admission (load shedding / exhausted tenant
budget) without the job ever entering the queue.  Every submitted job
reaches exactly one terminal state — DONE, FAILED or REJECTED — each
carrying a :class:`JobResult`; "zero lost jobs" means exactly that, and
:meth:`ExecutionService.lost_jobs
<repro.service.scheduler.ExecutionService.lost_jobs>` counts violations.

Failures are *structured*: :func:`structured_error` flattens any
exception a job raises into a plain dict (type, message, position,
deadline reason, fault cause) so results serialize and tenants can
pattern-match without importing simulator internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..interp.deadline import Deadline, UCDeadlineError
from ..lang.errors import UCError
from ..machine.errors import LinkFault, ProcessorFault
from ..machine.faults import FaultPlan

# -- states ------------------------------------------------------------------

QUEUED = "queued"
RUNNING = "running"
SUSPENDED = "suspended"
RETRY_WAIT = "retry_wait"
DONE = "done"
FAILED = "failed"
REJECTED = "rejected"

TERMINAL = (DONE, FAILED, REJECTED)


@dataclass(frozen=True)
class RetryPolicy:
    """Service-level retries (above the in-run RecoveryManager).

    A failed attempt whose root cause is a hardware fault (see
    :func:`retriable`) is re-run up to ``max_attempts`` times in total,
    waiting ``backoff_base_s * backoff_factor ** (attempt - 1)`` host
    seconds (capped at ``backoff_cap_s``, stretched by up to ``jitter``
    fraction — seeded, so scheduling stays reproducible) before
    re-queueing.  With ``verify_replays`` a job that needed any
    service-level retry is, after success, replayed once more under the
    same (clean) configuration and the two Clock fingerprints must be
    bit-identical — a determinism audit of the recovery machinery
    itself.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_cap_s: float = 30.0
    jitter: float = 0.0
    verify_replays: bool = False

    def backoff_s(self, attempt: int, *, seed: int = 0) -> float:
        delay = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        delay = min(delay, self.backoff_cap_s)
        if self.jitter > 0.0 and delay > 0.0:
            import numpy as np

            rng = np.random.default_rng((seed, attempt))
            delay *= 1.0 + self.jitter * rng.random()
        return min(delay, self.backoff_cap_s)


@dataclass
class JobSpec:
    """One tenant submission.

    ``faults`` may be a single plan/spec string (every attempt carries
    it) or a *list of per-attempt plans* — attempt ``k`` (1-based)
    installs ``faults[k-1]``, attempts past the end run clean.  The list
    form is how a tenant models "the fault storm happened once": the
    retry after in-run recovery exhaustion gets a clean machine and its
    fingerprint is bit-identical to a fault-free solo run.
    """

    source: str
    defines: Dict[str, int] = field(default_factory=dict)
    inputs: Optional[Dict[str, Any]] = None
    tenant: str = "default"
    seed: int = 20250704
    deadline: Optional[Deadline] = None
    faults: Union[None, str, FaultPlan, List[Union[None, str, FaultPlan]]] = None
    retry: Optional[RetryPolicy] = None
    recovery: Any = None  # RecoveryPolicy override for the in-run manager

    def fault_plan_for_attempt(self, attempt: int) -> Optional[FaultPlan]:
        """A fresh (unfired) plan for the ``attempt``-th execution."""
        spec = self.faults
        if isinstance(spec, list):
            spec = spec[attempt - 1] if attempt - 1 < len(spec) else None
        if spec is None:
            return None
        plan = FaultPlan.parse(spec) if isinstance(spec, str) else spec
        return plan.fork()


@dataclass
class JobResult:
    """The terminal outcome every submitted job gets exactly one of."""

    job_id: str
    tenant: str
    state: str  # DONE | FAILED | REJECTED
    attempts: int = 0
    preemptions: int = 0
    #: the RunResult of the successful attempt (DONE only; not
    #: journalled — persisted result arrays live in the spool)
    run: Any = None
    fingerprint: Any = None
    clock_us: float = 0.0
    wall_s: float = 0.0
    error: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.state == DONE


class Job:
    """Mutable service-side record of one submitted spec."""

    def __init__(self, job_id: str, spec: JobSpec, retry: RetryPolicy) -> None:
        self.id = job_id
        #: numeric suffix of the id ("j17" -> 17), seeds per-job RNGs
        self.num = int(job_id[1:]) if job_id[1:].isdigit() else 0
        self.spec = spec
        self.retry = retry
        self.state = QUEUED
        self.attempt = 1
        #: index of the next top-level statement (snapshot resume point)
        self.pc = 0
        self.snapshot = None  # PortableSnapshot while suspended
        self.prepared = None  # PreparedRun while resident on a worker
        self.monitor = None  # DeadlineMonitor, job-lifetime (wall accumulates)
        self.result: Optional[JobResult] = None
        self.preemptions = 0
        self.submitted_at = 0.0  # time.monotonic at admission
        self.not_before = 0.0  # retry backoff gate (monotonic seconds)
        self.slice_count = 0

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL


# -- structured errors -------------------------------------------------------


def structured_error(exc: BaseException) -> Dict[str, Any]:
    """Flatten an exception into a serializable, pattern-matchable dict."""
    out: Dict[str, Any] = {
        "type": type(exc).__name__,
        "message": str(exc),
    }
    if isinstance(exc, UCError):
        if getattr(exc, "line", 0):
            out["line"] = exc.line
            out["col"] = exc.col
    if isinstance(exc, UCDeadlineError):
        out["reason"] = exc.reason
        out["position"] = exc.position
        out["wall_used_s"] = exc.wall_used_s
        out["clock_used_us"] = exc.clock_used_us
    cause = exc.__cause__
    if cause is not None:
        out["cause"] = type(cause).__name__
    return out


def retriable(exc: BaseException) -> bool:
    """Should the service-level retry policy re-run after this failure?

    Only failures rooted in injected hardware faults are retriable — a
    later attempt may carry a different (or no) fault plan.  Program
    errors, sanitizer contradictions, deadline/budget cancellations and
    resource exhaustion are deterministic for a given attempt
    configuration, so retrying them would fail identically.
    """
    if isinstance(exc, (ProcessorFault, LinkFault)):
        return True
    if isinstance(exc, UCDeadlineError):
        return False
    return isinstance(exc.__cause__, (ProcessorFault, LinkFault))
