"""Crash durability: an append-only journal plus a snapshot spool.

Layout of a spool directory::

    journal.jsonl        append-only event log (one JSON object per line)
    spec-<job>.pkl       pickled JobSpec, written once at submit
    snap-<job>-<n>.pkl   portable snapshot of suspension n (atomic)
    result-<job>.npz     final arrays/scalars of a DONE job

The journal is the source of truth; payload files are only meaningful
when a journal line references them.  Every write that a recovery
depends on is ordered *payload file first (atomic tmp + rename), journal
line second (flushed + fsynced)* — so a crash at any instant leaves
either a fully recorded state transition or none, never a dangling
reference.  :func:`Spool.scan` replays the journal into the last known
state of every job: jobs with a terminal event are reported as finished
(their tenants' spent budget is reconstructed too) and everything else
is in-flight, restartable from its newest journalled snapshot — or from
scratch when it never suspended.  That replay is exactly what
``repro serve --resume <dir>`` feeds the scheduler.
"""

from __future__ import annotations

import json
import os
import pickle
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..interp.checkpoint import PortableSnapshot, snapshot_from_bytes, snapshot_to_bytes
from .jobstate import DONE, FAILED, REJECTED, JobSpec


def fingerprint_to_json(fp) -> Any:
    """Clock fingerprints are nested tuples; journal them as lists."""
    if isinstance(fp, tuple):
        return [fingerprint_to_json(x) for x in fp]
    return fp


def fingerprint_from_json(fp) -> Any:
    if isinstance(fp, list):
        return tuple(fingerprint_from_json(x) for x in fp)
    return fp


def _atomic_write(path: str, data: bytes) -> None:
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        f.write(data)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


class Spool:
    """One service's durable state under a single directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.journal_path = os.path.join(root, "journal.jsonl")
        self._journal = open(self.journal_path, "a", encoding="utf-8")

    def close(self) -> None:
        self._journal.close()

    # -- journal ------------------------------------------------------------

    def append(self, event: Dict[str, Any], *, sync: bool = True) -> None:
        self._journal.write(json.dumps(event, sort_keys=True) + "\n")
        self._journal.flush()
        if sync:
            os.fsync(self._journal.fileno())

    # -- payloads -----------------------------------------------------------

    def save_spec(self, job_id: str, spec: JobSpec) -> str:
        name = f"spec-{job_id}.pkl"
        _atomic_write(
            os.path.join(self.root, name),
            pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL),
        )
        return name

    def load_spec(self, name: str) -> JobSpec:
        with open(os.path.join(self.root, name), "rb") as f:
            return pickle.load(f)

    def save_snapshot(self, job_id: str, n: int, snap: PortableSnapshot) -> str:
        name = f"snap-{job_id}-{n}.pkl"
        _atomic_write(os.path.join(self.root, name), snapshot_to_bytes(snap))
        return name

    def load_snapshot(self, name: str) -> PortableSnapshot:
        with open(os.path.join(self.root, name), "rb") as f:
            return snapshot_from_bytes(f.read())

    def save_result(self, job_id: str, run) -> str:
        """Persist a DONE job's final variables (arrays + scalars)."""
        name = f"result-{job_id}.npz"
        path = os.path.join(self.root, name)
        tmp = path + ".tmp.npz"
        np.savez(tmp, **{var: np.asarray(run[var]) for var in run})
        os.replace(tmp, path)
        return name

    def load_result(self, name: str) -> Dict[str, np.ndarray]:
        with np.load(os.path.join(self.root, name)) as data:
            return {k: data[k] for k in data.files}

    # -- recovery -----------------------------------------------------------

    def scan(self) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, float]]:
        """Replay the journal into per-job last-known state.

        Returns ``(records, spent_us)``: ``records[job_id]`` holds the
        spec, the last journalled snapshot reference (if any), attempt
        and preemption counters, and — for finished jobs — the terminal
        event; ``spent_us`` is the per-tenant simulated time already
        charged by terminal jobs (budget reconstruction).
        """
        records: Dict[str, Dict[str, Any]] = {}
        spent: Dict[str, float] = {}
        if not os.path.exists(self.journal_path):
            return records, spent
        with open(self.journal_path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    ev = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn final line from a crash mid-append
                job_id = ev.get("job")
                if job_id is None:
                    continue
                kind = ev.get("ev")
                if kind == "submit":
                    records[job_id] = {
                        "spec_file": ev["spec"],
                        "tenant": ev.get("tenant", "default"),
                        "state": None,
                        "attempt": 1,
                        "snapshot_file": None,
                        "pc": 0,
                        "wall_used_s": 0.0,
                        "preemptions": 0,
                        "terminal": None,
                    }
                    continue
                rec = records.get(job_id)
                if rec is None:
                    continue  # reference to a job whose submit never landed
                if kind == "attempt":
                    rec["attempt"] = ev.get("attempt", rec["attempt"])
                    # a new attempt starts from scratch, not the old snapshot
                    rec["snapshot_file"] = None
                    rec["pc"] = 0
                elif kind == "suspend":
                    rec["snapshot_file"] = ev["snapshot"]
                    rec["pc"] = ev.get("pc", 0)
                    rec["attempt"] = ev.get("attempt", rec["attempt"])
                    rec["wall_used_s"] = ev.get("wall_used_s", 0.0)
                    rec["preemptions"] = ev.get("preemptions", rec["preemptions"])
                elif kind in (DONE, FAILED, REJECTED):
                    rec["state"] = kind
                    rec["terminal"] = ev
                    clock_us = ev.get("clock_us", 0.0)
                    if clock_us:
                        tenant = rec["tenant"]
                        spent[tenant] = spent.get(tenant, 0.0) + clock_us
        return records, spent
