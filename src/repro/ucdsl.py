"""An embedded Python DSL for building UC programs.

For users who prefer constructing programs from Python instead of writing
UC source text.  The builder assembles the same AST the parser would
produce, so the full pipeline (semantic checks, mappings, the simulator)
applies unchanged.

Example — ranksort:

>>> from repro.ucdsl import UCBuilder
>>> b = UCBuilder()
>>> I, i = b.index_set("I", "i", range(10))
>>> J, j = b.alias("J", "j", I)
>>> a = b.int_array("a", 10)
>>> with b.main():
...     with b.par(I):
...         rank = b.local("rank")
...         rank.set(b.sum(J, 1, where=(a[j] < a[i])))
...         a[rank].set(a[i])
>>> import numpy as np
>>> result = b.run({"a": np.array([5, 2, 7, 1, 9, 0, 4, 8, 3, 6])})
>>> result["a"].tolist()
[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]

Expressions use overloaded operators; because Python fixes the meaning of
``and``/``or``/``not`` and ``=``, the DSL spells those as ``&``/``|``/
``~`` (on boolean-valued expressions) and ``.set(...)``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .interp.program import RunResult, UCProgram
from .lang import ast
from .machine import MachineConfig

Operand = Union["E", int, float]


def _expr(x: Operand) -> ast.Expr:
    if isinstance(x, E):
        return x.node
    if isinstance(x, bool):
        return ast.IntLit(value=int(x))
    if isinstance(x, (int, np.integer)):
        return ast.IntLit(value=int(x))
    if isinstance(x, (float, np.floating)):
        return ast.FloatLit(value=float(x))
    raise TypeError(f"cannot use {type(x).__name__} in a UC expression")


class E:
    """A UC expression under construction."""

    __array_priority__ = 1000  # keep numpy scalars from hijacking ops

    def __init__(self, node: ast.Expr) -> None:
        self.node = node

    # -- arithmetic -----------------------------------------------------------

    def _bin(self, op: str, other: Operand, *, swap: bool = False) -> "E":
        left, right = (_expr(other), self.node) if swap else (self.node, _expr(other))
        return E(ast.Binary(op=op, left=left, right=right))

    def __add__(self, o: Operand) -> "E":
        return self._bin("+", o)

    def __radd__(self, o: Operand) -> "E":
        return self._bin("+", o, swap=True)

    def __sub__(self, o: Operand) -> "E":
        return self._bin("-", o)

    def __rsub__(self, o: Operand) -> "E":
        return self._bin("-", o, swap=True)

    def __mul__(self, o: Operand) -> "E":
        return self._bin("*", o)

    def __rmul__(self, o: Operand) -> "E":
        return self._bin("*", o, swap=True)

    def __truediv__(self, o: Operand) -> "E":
        return self._bin("/", o)

    def __rtruediv__(self, o: Operand) -> "E":
        return self._bin("/", o, swap=True)

    def __mod__(self, o: Operand) -> "E":
        return self._bin("%", o)

    def __rmod__(self, o: Operand) -> "E":
        return self._bin("%", o, swap=True)

    def __lshift__(self, o: Operand) -> "E":
        return self._bin("<<", o)

    def __rlshift__(self, o: Operand) -> "E":
        return self._bin("<<", o, swap=True)

    def __rshift__(self, o: Operand) -> "E":
        return self._bin(">>", o)

    def __rrshift__(self, o: Operand) -> "E":
        return self._bin(">>", o, swap=True)

    def __neg__(self) -> "E":
        return E(ast.Unary(op="-", operand=self.node))

    # -- comparisons / logic ------------------------------------------------------

    def __eq__(self, o: object) -> "E":  # type: ignore[override]
        return self._bin("==", o)  # type: ignore[arg-type]

    def __ne__(self, o: object) -> "E":  # type: ignore[override]
        return self._bin("!=", o)  # type: ignore[arg-type]

    def __lt__(self, o: Operand) -> "E":
        return self._bin("<", o)

    def __le__(self, o: Operand) -> "E":
        return self._bin("<=", o)

    def __gt__(self, o: Operand) -> "E":
        return self._bin(">", o)

    def __ge__(self, o: Operand) -> "E":
        return self._bin(">=", o)

    def __and__(self, o: Operand) -> "E":
        return self._bin("&&", o)

    def __rand__(self, o: Operand) -> "E":
        return self._bin("&&", o, swap=True)

    def __or__(self, o: Operand) -> "E":
        return self._bin("||", o)

    def __ror__(self, o: Operand) -> "E":
        return self._bin("||", o, swap=True)

    def __invert__(self) -> "E":
        return E(ast.Unary(op="!", operand=self.node))

    def __hash__(self) -> int:
        return id(self)

    def where(self, then: Operand, els: Operand) -> "E":
        """``self ? then : els`` (conditional expression)."""
        return E(ast.Ternary(cond=self.node, then=_expr(then), els=_expr(els)))

    def __repr__(self) -> str:
        from .compiler.cstar_gen import expr_to_text

        return f"E({expr_to_text(self.node)})"


class LValue(E):
    """An assignable expression (scalar name, local or array element)."""

    def __init__(self, builder: "UCBuilder", node: ast.Expr) -> None:
        super().__init__(node)
        self._builder = builder

    def set(self, value: Operand) -> None:
        """Record ``self = value;`` in the current body."""
        self._builder._emit(
            ast.ExprStmt(
                expr=ast.Assign(target=self.node, op="", value=_expr(value))
            )
        )

    def add(self, value: Operand) -> None:
        """Record ``self += value;``."""
        self._builder._emit(
            ast.ExprStmt(
                expr=ast.Assign(target=self.node, op="+", value=_expr(value))
            )
        )


class ArrayRef:
    """A declared UC array; indexing yields assignable element references."""

    def __init__(self, builder: "UCBuilder", name: str, rank: int) -> None:
        self._builder = builder
        self.name = name
        self.rank = rank

    def __getitem__(self, subs) -> LValue:
        if not isinstance(subs, tuple):
            subs = (subs,)
        if len(subs) != self.rank:
            raise ValueError(
                f"array {self.name!r} needs {self.rank} subscripts, got {len(subs)}"
            )
        node = ast.Index(base=self.name, subs=[_expr(s) for s in subs])
        return LValue(self._builder, node)


class IndexSet:
    """Handle to a declared index set (also exposes its element)."""

    def __init__(self, builder: "UCBuilder", name: str, elem: str) -> None:
        self._builder = builder
        self.name = name
        self.elem_name = elem

    @property
    def elem(self) -> E:
        return E(ast.Name(ident=self.elem_name))


class UCBuilder:
    """Assembles a UC program AST through a fluent Python API."""

    def __init__(self) -> None:
        self._program = ast.Program()
        self._body_stack: List[List[ast.Stmt]] = []
        self._construct_stack: List[ast.UCStmt] = []
        self._pending_if: Optional[ast.If] = None

    # -- declarations -----------------------------------------------------------

    def index_set(
        self, name: str, elem: str, values: Iterable[int]
    ) -> Tuple[IndexSet, E]:
        vals = list(values)
        if vals == list(range(vals[0], vals[-1] + 1)) if vals else False:
            spec = ast.IndexSetSpec(
                kind="range",
                lo=ast.IntLit(value=vals[0]),
                hi=ast.IntLit(value=vals[-1]),
            )
        else:
            spec = ast.IndexSetSpec(
                kind="listing", items=[ast.IntLit(value=v) for v in vals]
            )
        self._program.decls.append(
            ast.IndexSetDecl(set_name=name, elem_name=elem, spec=spec)
        )
        handle = IndexSet(self, name, elem)
        return handle, handle.elem

    def alias(self, name: str, elem: str, base: IndexSet) -> Tuple[IndexSet, E]:
        self._program.decls.append(
            ast.IndexSetDecl(
                set_name=name,
                elem_name=elem,
                spec=ast.IndexSetSpec(kind="alias", alias=base.name),
            )
        )
        handle = IndexSet(self, name, elem)
        return handle, handle.elem

    def _array(self, ctype: str, name: str, *dims: int) -> ArrayRef:
        self._program.decls.append(
            ast.VarDecl(
                ctype=ctype,
                name=name,
                dims=[ast.IntLit(value=int(d)) for d in dims],
            )
        )
        return ArrayRef(self, name, len(dims))

    def int_array(self, name: str, *dims: int) -> ArrayRef:
        return self._array("int", name, *dims)

    def float_array(self, name: str, *dims: int) -> ArrayRef:
        return self._array("float", name, *dims)

    def _scalar(self, ctype: str, name: str, init=None) -> LValue:
        decl = ast.VarDecl(ctype=ctype, name=name)
        if init is not None:
            decl.init = _expr(init)
        self._program.decls.append(decl)
        return LValue(self, ast.Name(ident=name))

    def int_scalar(self, name: str, init: Optional[int] = None) -> LValue:
        return self._scalar("int", name, init)

    def float_scalar(self, name: str, init: Optional[float] = None) -> LValue:
        return self._scalar("float", name, init)

    def local(self, name: str, ctype: str = "int") -> LValue:
        """A per-lane local inside the current parallel body."""
        self._emit(ast.VarDecl(ctype=ctype, name=name))
        return LValue(self, ast.Name(ident=name))

    # -- body plumbing --------------------------------------------------------------

    def _emit(self, stmt: ast.Stmt) -> None:
        if not self._body_stack:
            raise RuntimeError("statements must be built inside b.main()")
        self._body_stack[-1].append(stmt)

    @contextmanager
    def main(self):
        if self._program.main is not None:
            raise RuntimeError("main() already built")
        body: List[ast.Stmt] = []
        self._body_stack.append(body)
        yield
        self._body_stack.pop()
        self._program.main = ast.Block(stmts=body)

    @contextmanager
    def _construct(self, kind: str, sets: Sequence[IndexSet], star: bool):
        body: List[ast.Stmt] = []
        node = ast.UCStmt(kind=kind, star=star, index_sets=[s.name for s in sets])
        self._construct_stack.append(node)
        self._body_stack.append(body)
        try:
            yield node
        finally:
            self._body_stack.pop()
            self._construct_stack.pop()
        if not node.blocks and node.others is None:
            # no st() arms: the whole body is one unconditional block
            stmt = body[0] if len(body) == 1 else ast.Block(stmts=body)
            node.blocks.append(ast.ScBlock(pred=None, stmt=stmt))
        elif body:
            raise RuntimeError(f"{kind}: mix of st() arms and bare statements")
        self._emit(node)

    def par(self, *sets: IndexSet, star: bool = False):
        return self._construct("par", sets, star)

    def seq(self, *sets: IndexSet, star: bool = False):
        return self._construct("seq", sets, star)

    def solve(self, *sets: IndexSet, star: bool = False):
        return self._construct("solve", sets, star)

    def oneof(self, *sets: IndexSet, star: bool = False):
        return self._construct("oneof", sets, star)

    @contextmanager
    def st(self, pred: Operand):
        """One ``st (pred)`` arm of the enclosing construct."""
        body: List[ast.Stmt] = []
        self._body_stack.append(body)
        yield
        self._body_stack.pop()
        stmt = body[0] if len(body) == 1 else ast.Block(stmts=body)
        node = self._enclosing_construct()
        node.blocks.append(ast.ScBlock(pred=_expr(pred), stmt=stmt))

    @contextmanager
    def others(self):
        body: List[ast.Stmt] = []
        self._body_stack.append(body)
        yield
        self._body_stack.pop()
        node = self._enclosing_construct()
        node.others = body[0] if len(body) == 1 else ast.Block(stmts=body)

    def _enclosing_construct(self) -> ast.UCStmt:
        if not self._construct_stack:
            raise RuntimeError("st()/others() outside a par/seq/solve/oneof block")
        return self._construct_stack[-1]

    # -- control flow -----------------------------------------------------------------

    @contextmanager
    def if_(self, cond: Operand):
        body: List[ast.Stmt] = []
        self._body_stack.append(body)
        yield
        self._body_stack.pop()
        node = ast.If(
            cond=_expr(cond),
            then=body[0] if len(body) == 1 else ast.Block(stmts=body),
        )
        self._pending_if = node
        self._emit(node)

    @contextmanager
    def else_(self):
        if self._pending_if is None:
            raise RuntimeError("else_() without a preceding if_()")
        node = self._pending_if
        self._pending_if = None
        body: List[ast.Stmt] = []
        self._body_stack.append(body)
        yield
        self._body_stack.pop()
        node.els = body[0] if len(body) == 1 else ast.Block(stmts=body)

    @contextmanager
    def while_(self, cond: Operand):
        body: List[ast.Stmt] = []
        self._body_stack.append(body)
        yield
        self._body_stack.pop()
        self._emit(
            ast.While(
                cond=_expr(cond),
                body=body[0] if len(body) == 1 else ast.Block(stmts=body),
            )
        )

    # -- reductions & builtins -------------------------------------------------------------

    def _reduction(self, op: str, sets, expr: Operand, where: Optional[Operand]) -> E:
        if isinstance(sets, IndexSet):
            sets = (sets,)
        node = ast.Reduction(op=op, index_sets=[s.name for s in sets])
        node.arms.append(
            ast.ScExpr(
                pred=_expr(where) if where is not None else None, expr=_expr(expr)
            )
        )
        return E(node)

    def sum(self, sets, expr: Operand, *, where: Optional[Operand] = None) -> E:
        return self._reduction("add", sets, expr, where)

    def product(self, sets, expr: Operand, *, where: Optional[Operand] = None) -> E:
        return self._reduction("mul", sets, expr, where)

    def min(self, sets, expr: Operand, *, where: Optional[Operand] = None) -> E:
        return self._reduction("min", sets, expr, where)

    def max(self, sets, expr: Operand, *, where: Optional[Operand] = None) -> E:
        return self._reduction("max", sets, expr, where)

    def any(self, sets, expr: Operand, *, where: Optional[Operand] = None) -> E:
        return self._reduction("logor", sets, expr, where)

    def all(self, sets, expr: Operand, *, where: Optional[Operand] = None) -> E:
        return self._reduction("logand", sets, expr, where)

    def arbitrary(self, sets, expr: Operand, *, where: Optional[Operand] = None) -> E:
        return self._reduction("arbitrary", sets, expr, where)

    def call(self, func: str, *args: Operand) -> E:
        return E(ast.Call(func=func, args=[_expr(a) for a in args]))

    def power2(self, x: Operand) -> E:
        return self.call("power2", x)

    def sqrt(self, x: Operand) -> E:
        return self.call("sqrt", x)

    def rand(self) -> E:
        return self.call("rand")

    def abs(self, x: Operand) -> E:
        return self.call("ABS", x)

    def min2(self, a: Operand, b: Operand) -> E:
        return self.call("min", a, b)

    def max2(self, a: Operand, b: Operand) -> E:
        return self.call("max", a, b)

    def swap(self, a: LValue, b: LValue) -> None:
        self._emit(ast.ExprStmt(expr=ast.Call(func="swap", args=[a.node, b.node])))

    # -- map sections ------------------------------------------------------------------------

    def permute(self, sets, target: LValue, anchor: LValue) -> None:
        self._map_decl("permute", sets, target, anchor)

    def fold(self, sets, target: LValue, anchor: LValue) -> None:
        self._map_decl("fold", sets, target, anchor)

    def copy(self, sets, target: LValue, anchor: LValue) -> None:
        self._map_decl("copy", sets, target, anchor)

    def _map_decl(self, kind: str, sets, target: LValue, anchor: LValue) -> None:
        if isinstance(sets, IndexSet):
            sets = (sets,)
        if not isinstance(target.node, ast.Index) or not isinstance(
            anchor.node, ast.Index
        ):
            raise TypeError("map declarations take array references")
        decl = ast.MapDecl(
            kind=kind,
            index_sets=[s.name for s in sets],
            target=target.node,
            source=anchor.node,
        )
        if not self._program.maps:
            self._program.maps.append(
                ast.MapSection(index_sets=[s.name for s in sets])
            )
        self._program.maps[0].decls.append(decl)

    # -- building / running -------------------------------------------------------------------

    def build(self, **kwargs) -> UCProgram:
        """Finalize into a UCProgram (checks semantics immediately)."""
        if self._program.main is None:
            raise RuntimeError("build() before main() was defined")
        return UCProgram.from_ast(self._program, **kwargs)

    def run(
        self,
        inputs: Optional[Dict[str, Union[int, float, np.ndarray]]] = None,
        *,
        seed: int = 20250704,
        machine_config: Optional[MachineConfig] = None,
        **kwargs,
    ) -> RunResult:
        prog = self.build(machine_config=machine_config, **kwargs)
        return prog.run(inputs or {}, seed=seed)

    def source(self) -> str:
        """A C*-style rendering of the built program (for inspection)."""
        from .compiler.cstar_gen import generate_cstar

        prog = self.build()
        return generate_cstar(prog.info, prog.layouts)

    def lint(
        self,
        *,
        defines: Optional[Dict[str, int]] = None,
        apply_maps: bool = True,
        filename: str = "<ucdsl>",
    ):
        """Run the whole-program static analyzer over the built program.

        Returns the :class:`~repro.analysis.diagnostics.LintReport`;
        never raises on analyzable input (front-end failures come back
        as UC001/UC002 diagnostics).  DSL nodes carry no source
        positions, so diagnostics have line 0 and the runtime sanitizer
        makes no per-site claims — the structural checks (races, solve
        cycles, tiers, hygiene) still run in full.
        """
        from .analysis import lint_program

        if self._program.main is None:
            raise RuntimeError("lint() before main() was defined")
        return lint_program(
            self._program,
            defines=defines,
            apply_maps=apply_maps,
            filename=filename,
        )
