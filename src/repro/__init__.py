"""repro — a reproduction of "UC: A Language for the Connection Machine".

The package provides, from the bottom up:

* :mod:`repro.machine` — a cost-accurate CM-2 simulator (VP sets, NEWS
  grid, general router, scans, global-OR, front-end latency).
* :mod:`repro.lang` — lexer, parser and semantic checks for UC source.
* :mod:`repro.mapping` — the paper's data-mapping subsystem (default
  mappings plus ``permute`` / ``fold`` / ``copy``).
* :mod:`repro.interp` — a vectorised interpreter executing UC programs on
  the simulator; the top-level entry point is :class:`repro.UCProgram`.
* :mod:`repro.compiler` — optimization passes and the UC → C* backend.
* :mod:`repro.cstar` — a mini C* runtime (the paper's baseline language).
* :mod:`repro.seqc` — a sequential Sun-4 cost model (figure 8 baseline).
* :mod:`repro.algorithms` — pure-numpy reference implementations used to
  validate everything above.

Quickstart
----------
>>> from repro import UCProgram
>>> src = '''
... index_set I:i = {0..9};
... int a[10];
... main {
...     par (I) a[i] = i * i;
... }
... '''
... # doctest: +SKIP
>>> prog = UCProgram(src)     # doctest: +SKIP
>>> result = prog.run()       # doctest: +SKIP
>>> result["a"]               # doctest: +SKIP
array([ 0, 1, 4, ..., 81])
"""

__version__ = "1.0.0"

from .machine import FaultPlan, LinkFault, Machine, MachineConfig, ProcessorFault
from .interp.program import UCProgram, RunResult
from .interp.recovery import RecoveryPolicy
from .ucdsl import UCBuilder

__all__ = [
    "Machine",
    "MachineConfig",
    "UCProgram",
    "RunResult",
    "UCBuilder",
    "FaultPlan",
    "ProcessorFault",
    "LinkFault",
    "RecoveryPolicy",
    "__version__",
]
