"""Numerical UC programs: the §5 "experiments in progress" workloads.

The paper closes its evaluation with "Experiments are in progress to
study the performance of UC programs for CFD applications as well as
numerical computations involving SVD and Jacobi diagonalization".  This
module carries those experiments out:

* :data:`JACOBI_EIGEN_UC` — classical Jacobi diagonalization of a
  symmetric matrix: the front end drives sweeps, each sweep locating the
  largest off-diagonal element with reductions and applying the rotation
  to the affected row/column pairs in ``par``;
* :data:`LAPLACE_UC` — a Jacobi relaxation for Laplace's equation (the
  CFD-flavoured kernel): iterate the five-point stencil to a fixed point
  with ``*solve``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..interp.program import RunResult, UCProgram
from ..machine import MachineConfig

#: classical Jacobi eigenvalue iteration; eigenvalues land on the diagonal
JACOBI_EIGEN_UC = """
index_set I:i = {0..N-1}, J:j = I;
float a[N][N];
float EPS;
float apq, app, aqq, theta, t, c, s;
int p, q, pq;

main {
    while ($>(I, J st (i < j) ABS(a[i][j])) > EPS) {
        /* locate the largest off-diagonal element (ties: smallest i*N+j) */
        apq = $>(I, J st (i < j) ABS(a[i][j]));
        pq  = $<(I, J st (i < j && ABS(a[i][j]) == apq) i * N + j);
        p = pq / N;
        q = pq % N;

        /* rotation angle (Rutishauser's stable formulas) */
        app = a[p][p];
        aqq = a[q][q];
        theta = (aqq - app) / (2.0 * a[p][q]);
        t = (theta >= 0.0 ? 1.0 : 0.0 - 1.0)
            / (ABS(theta) + sqrt(theta * theta + 1.0));
        c = 1.0 / sqrt(t * t + 1.0);
        s = t * c;

        /* rotate columns p and q, then rows p and q, in parallel */
        par (I) {
            float xip, xiq;
            xip = a[i][p];
            xiq = a[i][q];
            a[i][p] = c * xip - s * xiq;
            a[i][q] = s * xip + c * xiq;
        }
        par (J) {
            float xpj, xqj;
            xpj = a[p][j];
            xqj = a[q][j];
            a[p][j] = c * xpj - s * xqj;
            a[q][j] = s * xpj + c * xqj;
        }
    }
}
"""

#: Laplace relaxation with fixed boundary (integer-scaled temperatures so
#: the *solve fixed point is exact)
LAPLACE_UC = """
index_set I:i = {1..N-2}, J:j = I;
int t[N][N];
main {
    *solve (I, J)
        t[i][j] = (t[i-1][j] + t[i+1][j] + t[i][j-1] + t[i][j+1]) / 4;
}
"""


def random_symmetric(n: int, *, seed: int = 0, scale: float = 10.0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    m = rng.normal(0.0, scale, (n, n))
    return (m + m.T) / 2.0


def run_jacobi_eigen(
    a: np.ndarray,
    *,
    eps: float = 1e-8,
    machine_config: Optional[MachineConfig] = None,
) -> Tuple[np.ndarray, RunResult]:
    """Diagonalise symmetric ``a``; returns (sorted eigenvalues, RunResult)."""
    n = a.shape[0]
    if a.shape != (n, n) or not np.allclose(a, a.T):
        raise ValueError("matrix must be square and symmetric")
    prog = UCProgram(
        JACOBI_EIGEN_UC,
        defines={"N": n},
        machine_config=machine_config,
    )
    result = prog.run({"a": a.astype(np.float64), "EPS": eps})
    eig = np.sort(np.diag(np.asarray(result["a"])))
    return eig, result


def run_laplace(
    boundary: np.ndarray,
    *,
    machine_config: Optional[MachineConfig] = None,
) -> RunResult:
    """Relax the interior of ``boundary`` (int64 grid) to equilibrium."""
    n = boundary.shape[0]
    prog = UCProgram(LAPLACE_UC, defines={"N": n}, machine_config=machine_config)
    return prog.run({"t": boundary.astype(np.int64)})
