"""Benchmark support: canonical workloads, sweep harness, paper-style reports."""

from .harness import Series, Sweep, run_sweep
from .report import format_series_table, format_table
from . import workloads

__all__ = [
    "Series",
    "Sweep",
    "run_sweep",
    "format_table",
    "format_series_table",
    "workloads",
]
