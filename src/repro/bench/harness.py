"""Sweep harness: run a workload across a parameter range, collect series.

A :class:`Sweep` maps a parameter (``N`` for figures 6–7, rows for
figure 8) to one or more named time series — the exact structure of the
paper's figures — and renders itself as the rows the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple


@dataclass
class Series:
    """One named curve: parameter values -> measured values."""

    name: str
    unit: str = "s"
    points: Dict[int, float] = field(default_factory=dict)

    def add(self, x: int, y: float) -> None:
        self.points[x] = y

    def xs(self) -> List[int]:
        return sorted(self.points)

    def ys(self) -> List[float]:
        return [self.points[x] for x in self.xs()]

    def at(self, x: int) -> float:
        return self.points[x]


@dataclass
class Sweep:
    """A family of series over one shared parameter axis."""

    title: str
    x_label: str
    series: Dict[str, Series] = field(default_factory=dict)

    def series_named(self, name: str, unit: str = "s") -> Series:
        if name not in self.series:
            self.series[name] = Series(name, unit)
        return self.series[name]

    def record(self, name: str, x: int, y: float, unit: str = "s") -> None:
        self.series_named(name, unit).add(x, y)

    def xs(self) -> List[int]:
        out: List[int] = []
        for s in self.series.values():
            for x in s.points:
                if x not in out:
                    out.append(x)
        return sorted(out)

    def crossover(self, a: str, b: str) -> Optional[int]:
        """Smallest x where series ``a`` exceeds series ``b`` (None if never)."""
        sa, sb = self.series[a], self.series[b]
        for x in self.xs():
            if x in sa.points and x in sb.points and sa.at(x) > sb.at(x):
                return x
        return None

    def ratio(self, a: str, b: str, x: int) -> float:
        return self.series[a].at(x) / self.series[b].at(x)


def run_sweep(
    title: str,
    x_label: str,
    xs: Sequence[int],
    runners: Dict[str, Callable[[int], float]],
    *,
    unit: str = "s",
) -> Sweep:
    """Run each named callable at every x; collect the resulting curves."""
    sweep = Sweep(title, x_label)
    for x in xs:
        for name, fn in runners.items():
            sweep.record(name, x, fn(x), unit=unit)
    return sweep
