"""Text rendering of benchmark results in the paper's figure/table style."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .harness import Sweep


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """A plain monospace table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def ascii_plot(
    sweep: Sweep,
    *,
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
) -> str:
    """A terminal rendering of the sweep, shaped like the paper's figures.

    Each series gets a marker character; points are placed on a
    ``width``×``height`` canvas with linear axes from 0 to the maxima.
    """
    markers = "*o+x#@"
    xs_all = sweep.xs()
    if not xs_all:
        return "(empty sweep)"
    x_max = max(xs_all)
    y_max = max(
        (max(s.points.values()) for s in sweep.series.values() if s.points),
        default=1.0,
    )
    x_max = max(x_max, 1)
    y_max = y_max if y_max > 0 else 1.0
    canvas = [[" "] * width for _ in range(height)]
    for k, (name, series) in enumerate(sweep.series.items()):
        mark = markers[k % len(markers)]
        for x, y in series.points.items():
            col = min(width - 1, int(round(x / x_max * (width - 1))))
            row = min(height - 1, int(round(y / y_max * (height - 1))))
            canvas[height - 1 - row][col] = mark
    lines: List[str] = []
    if title or sweep.title:
        lines.append(title if title is not None else sweep.title)
    lines.append(f"{y_max:.3g} ┤")
    for row in canvas:
        lines.append("      │" + "".join(row))
    lines.append("    0 └" + "─" * width)
    lines.append(f"       0{' ' * (width - len(str(x_max)) - 1)}{x_max}  ({sweep.x_label})")
    legend = "   ".join(
        f"{markers[k % len(markers)]} {name}" for k, name in enumerate(sweep.series)
    )
    lines.append("       " + legend)
    return "\n".join(lines)


def format_series_table(sweep: Sweep, *, title: Optional[str] = None) -> str:
    """Render a sweep as the rows the paper's figure plots."""
    names = list(sweep.series)
    headers = [sweep.x_label] + [
        f"{name} ({sweep.series[name].unit})" for name in names
    ]
    rows = []
    for x in sweep.xs():
        row: List[object] = [x]
        for name in names:
            s = sweep.series[name]
            row.append(s.points.get(x, float("nan")))
        rows.append(row)
    return format_table(headers, rows, title=title if title is not None else sweep.title)
