"""Canonical UC sources and runners for the paper's workloads.

Every benchmark and example builds on these, so the program text is in
exactly one place.  The sources are parameterised through ``defines``
(standing in for the paper's ``#define N 32``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..algorithms.grid_path import BIG, obstacle_mask
from ..interp.program import RunResult, UCProgram
from ..machine import MachineConfig

#: Figure 4 — all-pairs shortest path, O(N²) parallelism
APSP_N2_UC = """
index_set I:i = {0..N-1}, J:j = I, K:k = I;
int d[N][N];
main {
    seq (K)
      par (I, J)
        st (d[i][k] + d[k][j] < d[i][j])
          d[i][j] = d[i][k] + d[k][j];
}
"""

#: Figure 4 including the paper's random initialisation (rand()%N + 1)
APSP_N2_UC_SELFINIT = """
index_set I:i = {0..N-1}, J:j = I, K:k = I;
int d[N][N];
main {
    par (I, J) st (i==j)
        d[i][j] = 0;
      others
        d[i][j] = rand() % N + 1;
    seq (K)
      par (I, J)
        st (d[i][k] + d[k][j] < d[i][j])
          d[i][j] = d[i][k] + d[k][j];
}
"""

#: Figure 5 — all-pairs shortest path, O(N³) parallelism (log N squarings)
APSP_N3_UC = """
index_set I:i = {0..N-1}, J:j = I, K:k = I;
index_set L:l = {0..LOGN-1};
int d[N][N];
main {
    seq (L)
      par (I, J)
        d[i][j] = $<(K; d[i][k] + d[k][j]);
}
"""

#: §3.6 — all-pairs shortest path via *solve (fixed point)
APSP_SOLVE_UC = """
index_set I:i = {0..N-1}, J:j = I, K:k = I;
int dist[N][N];
main {
    *solve (I, J)
        dist[i][j] = $<(K; dist[i][k] + dist[k][j]);
}
"""

#: Figures 8/11 — grid shortest path with the stationary obstacle.
#: Init follows figure 11 (wall on the anti-diagonal band, all other
#: cells at distance 0, goal fixed at (0,0)); the *par then iterates the
#: neighbour relaxation until no cell changes.
OBSTACLE_UC = """
index_set I:i = {0..R-1}, J:j = I;
int a[R][R];
main {
    par (I, J)
        st (i + j == R-1 && ABS(i - R/2) <= R/4) a[i][j] = WALL;
        others a[i][j] = 0;
    a[0][0] = 0;
    *par (I, J)
        st (a[i][j] != WALL && (i != 0 || j != 0) &&
            a[i][j] != 1 + min(min(i > 0 ? a[i-1][j] : WALL,
                                   i < R-1 ? a[i+1][j] : WALL),
                               min(j > 0 ? a[i][j-1] : WALL,
                                   j < R-1 ? a[i][j+1] : WALL)))
        a[i][j] = 1 + min(min(i > 0 ? a[i-1][j] : WALL,
                              i < R-1 ? a[i+1][j] : WALL),
                          min(j > 0 ? a[i][j-1] : WALL,
                              j < R-1 ? a[i][j+1] : WALL));
}
"""

#: Figure 8's dynamic variant: walls arrive via an input array; the host
#: raises the new walls first (so nobody paths through a stale value) and
#: the same self-stabilising relaxation re-converges.  The update clamps
#: at WALL so cells that random obstacles have *enclosed* stabilise at
#: "disconnected" instead of counting up forever.
DYNAMIC_OBSTACLE_UC = """
index_set I:i = {0..R-1}, J:j = I;
int a[R][R];
int walls[R][R];
main {
    par (I, J) st (walls[i][j] == 1) a[i][j] = WALL;
    *par (I, J)
        st (walls[i][j] == 0 && (i != 0 || j != 0) &&
            a[i][j] != min(WALL,
                           1 + min(min(i > 0 ? a[i-1][j] : WALL,
                                       i < R-1 ? a[i+1][j] : WALL),
                                   min(j > 0 ? a[i][j-1] : WALL,
                                       j < R-1 ? a[i][j+1] : WALL))))
        a[i][j] = min(WALL,
                      1 + min(min(i > 0 ? a[i-1][j] : WALL,
                                  i < R-1 ? a[i+1][j] : WALL),
                              min(j > 0 ? a[i][j-1] : WALL,
                                  j < R-1 ? a[i][j+1] : WALL)));
}
"""

#: §3.6 — the wavefront recurrence via solve
WAVEFRONT_UC = """
index_set I:i = {0..N-1}, J:j = I;
int a[N][N];
main {
    solve (I, J)
        a[i][j] = (i == 0 || j == 0) ? 1
                : a[i-1][j] + a[i-1][j-1] + a[i][j-1];
}
"""

#: Figure 2 — prefix sums with *par
PREFIX_STARPAR_UC = """
index_set I:i = {0..N-1};
int a[N], cnt[N];
int power2(int x) { return 1 << x; }
main {
    par (I) { a[i] = i; cnt[i] = 0; }
    *par (I) st (i >= power2(cnt[i])) {
        a[i] = a[i] + a[i - power2(cnt[i])];
        cnt[i] = cnt[i] + 1;
    }
}
"""

#: Figure 3 — prefix sums with seq-in-par
PREFIX_SEQ_UC = """
index_set I:i = {0..N-1}, J:j = {0..LOGN-1};
int a[N];
int power2(int x) { return 1 << x; }
main {
    par (I) {
        a[i] = i;
        seq (J) st (i - power2(j) >= 0)
            a[i] = a[i] + a[i - power2(j)];
    }
}
"""

#: §3.7 — odd-even transposition sort with *oneof
ODDEVEN_UC = """
index_set I:i = {0..N-2};
int x[N];
main {
    *oneof (I)
      st (i % 2 == 0 && x[i] > x[i+1]) swap(x[i], x[i+1]);
      st (i % 2 != 0 && x[i] > x[i+1]) swap(x[i], x[i+1]);
}
"""

#: §3.4 — ranksort
RANKSORT_UC = """
index_set I:i = {0..N-1}, J:j = I;
int a[N];
main {
    par (I) {
        int rank;
        rank = $+(J st (a[j] < a[i]) 1);
        a[rank] = a[i];
    }
}
"""

#: §4 — the digit-count processor-optimization example
DIGIT_COUNT_UC = """
index_set I:i = {0..N-1}, J:j = {0..9};
int samples[N];
int count[10];
main {
    par (J)
        count[j] = $+(I st (samples[i] == j) 1);
}
"""

#: §1 / §4 — matrix multiply (the paper's introduction kernel)
MATMUL_UC = """
index_set I:i = {0..N-1}, J:j = I, K:k = I;
int a[N][N], b[N][N], c[N][N];
main {
    par (I, J)
        c[i][j] = $+(K; a[i][k] * b[k][j]);
}
"""

#: Mapping kernel (a): shifted assignment a[i] = b[i+1] (NEWS -> local)
SHIFT_KERNEL_UC = """
index_set I:i = {0..N-2}, T:t = {0..REPS-1};
int a[N], b[N];
MAYBE_MAP
main {
    seq (T)
        par (I) a[i] = a[i] + b[i+1];
}
"""

SHIFT_KERNEL_MAP = """
map (I) {
    permute (I) b[i+1] :- a[i];
}
"""

#: Mapping kernel (b): transpose access (router -> local).  Two transposed
#: operand arrays keep the kernel communication-bound, mirroring the
#: router-heavy programs where [2] measured its ~10x improvements.
TRANSPOSE_KERNEL_UC = """
index_set I:i = {0..N-1}, J:j = I, T:t = {0..REPS-1};
int a[N][N], b[N][N], c[N][N];
MAYBE_MAP
main {
    seq (T)
        par (I, J) a[i][j] = a[i][j] + b[j][i] + c[j][i];
}
"""

TRANSPOSE_KERNEL_MAP = """
map (I, J) {
    permute (I, J) b[j][i] :- a[i][j];
    permute (I, J) c[j][i] :- a[i][j];
}
"""

#: Mapping kernel (c): fold — pairing a[i] with a[i + N/2] (router -> local)
FOLD_KERNEL_UC = """
index_set I:i = {0..N/2-1}, T:t = {0..REPS-1};
int a[N], s[N/2];
MAYBE_MAP
main {
    seq (T)
        par (I) s[i] = a[i] + a[i + N/2];
}
"""

FOLD_KERNEL_MAP = """
map (I) {
    fold (I) a[i + N/2] :- a[i];
}
"""

#: Mapping kernel (d): copy — vector/matrix combination needing spreads
COPY_KERNEL_UC = """
index_set I:i = {0..N-1}, K:k = I, T:t = {0..REPS-1};
int v[N], w[N], m[N][N];
MAYBE_MAP
main {
    seq (T)
        par (I, K) m[i][k] = m[i][k] + v[i] + w[i];
}
"""

COPY_KERNEL_MAP = """
map (I, K) {
    copy (I, K) v[i][k] :- v[i];
    copy (I, K) w[i][k] :- w[i];
}
"""


def with_map(source: str, map_section: str, enable: bool) -> str:
    """Inject (or drop) a map section at the ``MAYBE_MAP`` marker."""
    return source.replace("MAYBE_MAP", map_section if enable else "")


def log2_ceil(n: int) -> int:
    return max(1, math.ceil(math.log2(max(2, n))))


@dataclass
class UCRun:
    """Convenience record: result + headline numbers."""

    result: RunResult

    @property
    def elapsed_us(self) -> float:
        return self.result.elapsed_us

    @property
    def elapsed_s(self) -> float:
        return self.result.elapsed_us / 1e6


def run_apsp_n2(
    n: int,
    dist: Optional[np.ndarray] = None,
    *,
    machine_config: Optional[MachineConfig] = None,
    seed: int = 1,
) -> RunResult:
    from ..algorithms.shortest_path import random_distance_matrix

    d = dist if dist is not None else random_distance_matrix(n, seed=seed)
    prog = UCProgram(APSP_N2_UC, defines={"N": n}, machine_config=machine_config)
    return prog.run({"d": d})


def run_apsp_n3(
    n: int,
    dist: Optional[np.ndarray] = None,
    *,
    machine_config: Optional[MachineConfig] = None,
    seed: int = 1,
) -> RunResult:
    from ..algorithms.shortest_path import random_distance_matrix

    d = dist if dist is not None else random_distance_matrix(n, seed=seed)
    prog = UCProgram(
        APSP_N3_UC,
        defines={"N": n, "LOGN": log2_ceil(n)},
        machine_config=machine_config,
    )
    return prog.run({"d": d})


def run_obstacle(
    r: int,
    *,
    machine_config: Optional[MachineConfig] = None,
) -> RunResult:
    prog = UCProgram(
        OBSTACLE_UC, defines={"R": r, "WALL": BIG}, machine_config=machine_config
    )
    return prog.run()
