"""Layout descriptors: where array elements physically live.

The *canonical* placement of an array of shape ``(n0, ..., nk)`` puts
logical element ``(x0, ..., xk)`` on grid position ``(x0, ..., xk)`` of
its VP set, with conforming arrays co-located (the compiler default,
paper §4).  A :class:`Layout` describes a deviation from canonical:

* per-axis integer ``offsets`` — element ``x`` lives at position
  ``x + offset`` (the result of a ``permute`` with a shifted target);
* an ``axis_perm`` — physical axis order differs from logical (the result
  of a transposing ``permute``);
* an :class:`AxisFold` — one axis is folded (wrap or mirror) onto its
  lower half, halving the processors used;
* ``copy_elem`` / ``copy_extent`` — the array is replicated along an
  extra axis aligned with an index-set element.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..lang.errors import UCSemanticError


@dataclass(frozen=True)
class AxisFold:
    """Fold of one logical axis.

    ``kind`` is ``"wrap"`` (element ``x >= pivot`` lives at ``x - pivot``)
    or ``"mirror"`` (element ``x`` with ``x > param/2`` lives at
    ``param - x``; ``param`` is typically ``n-1``).
    """

    axis: int
    kind: str  # 'wrap' | 'mirror'
    param: int

    def physical(self, x: int) -> int:
        if self.kind == "wrap":
            return x - self.param if x >= self.param else x
        # mirror around param/2
        return self.param - x if 2 * x > self.param else x


@dataclass(frozen=True)
class Layout:
    """Physical placement of one array relative to canonical."""

    array: str
    shape: Tuple[int, ...]
    offsets: Tuple[int, ...] = ()
    axis_perm: Optional[Tuple[int, ...]] = None
    fold: Optional[AxisFold] = None
    copy_elem: Optional[str] = None
    copy_extent: int = 1

    def __post_init__(self) -> None:
        if not self.offsets:
            object.__setattr__(self, "offsets", (0,) * len(self.shape))
        if len(self.offsets) != len(self.shape):
            raise UCSemanticError(
                f"layout for {self.array!r}: {len(self.offsets)} offsets for "
                f"rank {len(self.shape)}"
            )
        if self.axis_perm is not None and sorted(self.axis_perm) != list(
            range(len(self.shape))
        ):
            raise UCSemanticError(
                f"layout for {self.array!r}: bad axis permutation {self.axis_perm}"
            )

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def is_canonical(self) -> bool:
        return (
            all(o == 0 for o in self.offsets)
            and (self.axis_perm is None or tuple(self.axis_perm) == tuple(range(self.rank)))
            and self.fold is None
            and self.copy_elem is None
        )

    def physical_position(self, logical: Tuple[int, ...]) -> Tuple[int, ...]:
        """Grid position of logical element ``logical`` (ignores copies —
        a copied element lives at this position in *every* replica layer).
        """
        if len(logical) != self.rank:
            raise UCSemanticError(
                f"layout for {self.array!r}: position rank mismatch"
            )
        pos = [x + o for x, o in zip(logical, self.offsets)]
        if self.fold is not None:
            pos[self.fold.axis] = self.fold.physical(logical[self.fold.axis]) + self.offsets[
                self.fold.axis
            ]
        if self.axis_perm is not None:
            pos = [pos[a] for a in self.axis_perm]
        return tuple(pos)

    def with_offsets(self, offsets: Tuple[int, ...]) -> "Layout":
        return replace(self, offsets=offsets)

    def with_fold(self, fold: AxisFold) -> "Layout":
        return replace(self, fold=fold)

    def with_axis_perm(self, perm: Tuple[int, ...]) -> "Layout":
        return replace(self, axis_perm=perm)

    def with_copy(self, elem: str, extent: int) -> "Layout":
        return replace(self, copy_elem=elem, copy_extent=extent)


class LayoutTable:
    """All array layouts of one program run."""

    def __init__(self) -> None:
        self._layouts: Dict[str, Layout] = {}

    def add(self, layout: Layout) -> None:
        self._layouts[layout.array] = layout

    def get(self, array: str) -> Layout:
        try:
            return self._layouts[array]
        except KeyError:
            raise UCSemanticError(f"no layout for array {array!r}") from None

    def __contains__(self, array: str) -> bool:
        return array in self._layouts

    def __iter__(self):
        return iter(self._layouts.values())

    def arrays(self):
        return list(self._layouts)

    def non_canonical(self):
        """Arrays whose layout deviates from the compiler default."""
        return [l for l in self._layouts.values() if not l.is_canonical]
