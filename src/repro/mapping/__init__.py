"""Data mappings (paper §4): default layouts plus permute / fold / copy.

A *layout* describes where each element of a program array physically
lives relative to the canonical grid placement the compiler would choose
by default (conforming arrays co-located element-wise).  The three mapping
classes re-layout arrays **without changing program meaning**:

* ``permute`` — shift/reorder one array relative to another so references
  like ``a[i] = b[i+1]`` become local;
* ``fold`` — fold an array onto itself (wrap or mirror) so ``a[i]`` and
  ``a[i+N/2]`` (or ``a[N-1-i]``) share a processor;
* ``copy`` — replicate an array along an extra index-set axis so row
  broadcasts become local reads.

The :mod:`locality` module classifies every array reference appearing in
a parallel context into LOCAL / NEWS / SPREAD / BROADCAST / ROUTER, which
is what the interpreter charges the machine clock for.
"""

from .layout import AxisFold, Layout, LayoutTable
from .locality import RefClass, classify_reference, classify_write
from .maps import apply_map_decl, build_layouts
from .default import default_layouts
from .remap import RemapReport, remap_off_dead, vpset_uses_pe
from .transform import rewrite_program, rewrite_subscripts

__all__ = [
    "RemapReport",
    "remap_off_dead",
    "vpset_uses_pe",
    "Layout",
    "AxisFold",
    "LayoutTable",
    "RefClass",
    "classify_reference",
    "classify_write",
    "apply_map_decl",
    "build_layouts",
    "default_layouts",
    "rewrite_program",
    "rewrite_subscripts",
]
