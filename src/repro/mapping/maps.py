"""Turning parsed ``map`` sections into concrete layouts.

A map declaration relates two array references over index-set elements,
e.g. ``permute (I) b[i+1] :- a[i];`` — "place element ``i+1`` of ``b``
where element ``i`` of ``a`` lives".  With ``a`` canonical this gives
``b`` a per-axis offset; transposed element orders give an axis
permutation; ``fold`` and ``copy`` populate the corresponding layout
fields.  Map declarations never change program results (the paper's
central claim, property-tested in ``tests/properties``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..lang import ast
from ..lang.errors import UCSemanticError
from ..lang.semantics import ProgramInfo, _ConstEvaluator
from .layout import AxisFold, Layout, LayoutTable
from .default import default_layouts


@dataclass(frozen=True)
class AffineSub:
    """A subscript of the form ``scale*elem + offset`` (or pure constant)."""

    elem: Optional[str]
    scale: int
    offset: int


def affine_subscript(
    expr: ast.Expr, elements: Dict[str, str], constants: Dict[str, int]
) -> AffineSub:
    """Canonicalise a map-section subscript to ``scale*elem + offset``.

    ``elements`` maps element identifiers in scope to their index sets.
    Raises if the subscript is not affine in at most one element.
    """
    consts = _ConstEvaluator(constants)

    def go(e: ast.Expr) -> AffineSub:
        if isinstance(e, ast.Name) and e.ident in elements:
            return AffineSub(e.ident, 1, 0)
        if isinstance(e, ast.Unary) and e.op == "-":
            s = go(e.operand)
            return AffineSub(s.elem, -s.scale, -s.offset)
        if isinstance(e, ast.Binary) and e.op in ("+", "-"):
            l, r = go(e.left), go(e.right)
            if e.op == "-":
                r = AffineSub(r.elem, -r.scale, -r.offset)
            if l.elem is not None and r.elem is not None:
                raise UCSemanticError(
                    "map subscript uses two index elements", e.line, e.col
                )
            elem = l.elem or r.elem
            scale = l.scale if l.elem else r.scale
            if elem is None:
                scale = 0
            return AffineSub(elem, scale, l.offset + r.offset)
        # anything else must be a compile-time constant
        return AffineSub(None, 0, consts.eval(e))

    sub = go(expr)
    if sub.elem is not None and sub.scale not in (1, -1):
        raise UCSemanticError(
            "map subscripts must have unit element coefficient", expr.line, expr.col
        )
    return sub


def _decl_elements(decl: ast.MapDecl, info: ProgramInfo) -> Dict[str, str]:
    elems: Dict[str, str] = {}
    for set_name in decl.index_sets:
        isv = info.index_sets[set_name]
        elems[isv.elem_name] = set_name
    return elems


def apply_map_decl(decl: ast.MapDecl, table: LayoutTable, info: ProgramInfo) -> None:
    """Apply one ``permute`` / ``fold`` / ``copy`` declaration to ``table``."""
    if decl.kind == "permute":
        _apply_permute(decl, table, info)
    elif decl.kind == "fold":
        _apply_fold(decl, table, info)
    elif decl.kind == "copy":
        _apply_copy(decl, table, info)
    else:  # pragma: no cover - parser restricts kinds
        raise UCSemanticError(f"unknown map kind {decl.kind!r}", decl.line, decl.col)


def _apply_permute(decl: ast.MapDecl, table: LayoutTable, info: ProgramInfo) -> None:
    """``permute (I) target[f(i)] :- source[g(i)];``

    For every element value, the referenced target element must land on
    the physical position of the referenced source element.  Supported
    shapes: per-axis shifts (unit positive coefficient) and axis
    permutations; mirror coefficients belong to ``fold``.
    """
    assert decl.source is not None
    elems = _decl_elements(decl, info)
    tgt_subs = [affine_subscript(s, elems, info.constants) for s in decl.target.subs]
    src_subs = [affine_subscript(s, elems, info.constants) for s in decl.source.subs]
    target = table.get(decl.target.base)
    source = table.get(decl.source.base)

    if not source.is_canonical:
        raise UCSemanticError(
            f"permute source {decl.source.base!r} must have the default layout "
            "(chain permutes from canonical anchors)",
            decl.line,
            decl.col,
        )

    # match target axes to source axes by shared element identifiers
    offsets: List[int] = list(target.offsets)
    perm: List[int] = list(range(target.rank))
    for t_axis, t_sub in enumerate(tgt_subs):
        if t_sub.elem is None:
            continue  # constant-pinned axis keeps its default placement
        if t_sub.scale != 1:
            raise UCSemanticError(
                "permute with mirrored subscripts: use a fold mapping",
                decl.line,
                decl.col,
            )
        matches = [a for a, s in enumerate(src_subs) if s.elem == t_sub.elem]
        if not matches:
            raise UCSemanticError(
                f"permute: element {t_sub.elem!r} of target does not appear "
                "in the source reference",
                decl.line,
                decl.col,
            )
        s_axis = matches[0]
        s_sub = src_subs[s_axis]
        # target element (e + t_off) lives where source element (e + s_off)
        # lives; source is canonical, so physical(target x) = x - t_off + s_off
        offsets[t_axis] = s_sub.offset - t_sub.offset
        perm[t_axis] = s_axis

    new = target.with_offsets(tuple(offsets))
    if perm != list(range(target.rank)):
        if sorted(perm) != list(range(target.rank)):
            raise UCSemanticError(
                "permute axis correspondence is not a permutation", decl.line, decl.col
            )
        new = new.with_axis_perm(tuple(perm))
    table.add(new)


def _apply_fold(decl: ast.MapDecl, table: LayoutTable, info: ProgramInfo) -> None:
    """``fold (I) a[expr(i)] :- a[i];`` — co-locate the two references.

    ``a[i + p] :- a[i]`` gives a *wrap* fold with pivot ``p``;
    ``a[c - i] :- a[i]`` gives a *mirror* fold around ``c/2``.
    """
    assert decl.source is not None
    elems = _decl_elements(decl, info)
    tgt_subs = [affine_subscript(s, elems, info.constants) for s in decl.target.subs]
    src_subs = [affine_subscript(s, elems, info.constants) for s in decl.source.subs]
    layout = table.get(decl.target.base)

    fold_axis = None
    fold_spec: Optional[AxisFold] = None
    for axis, (t, s) in enumerate(zip(tgt_subs, src_subs)):
        if t == s:
            continue
        if fold_axis is not None:
            raise UCSemanticError("fold mapping may fold only one axis", decl.line, decl.col)
        if s.elem is None or s.scale != 1 or s.offset != 0:
            raise UCSemanticError(
                "fold source subscript must be a bare element", decl.line, decl.col
            )
        if t.elem != s.elem:
            raise UCSemanticError(
                "fold target must use the same element as its source", decl.line, decl.col
            )
        fold_axis = axis
        if t.scale == 1:
            if t.offset <= 0:
                raise UCSemanticError(
                    "wrap fold needs a positive pivot offset", decl.line, decl.col
                )
            fold_spec = AxisFold(axis=axis, kind="wrap", param=t.offset)
        else:  # scale == -1: mirror around t.offset
            fold_spec = AxisFold(axis=axis, kind="mirror", param=t.offset)
    if fold_spec is None:
        raise UCSemanticError(
            "fold mapping target equals its source (nothing folded)", decl.line, decl.col
        )
    table.add(layout.with_fold(fold_spec))


def _apply_copy(decl: ast.MapDecl, table: LayoutTable, info: ProgramInfo) -> None:
    """``copy (I, K) a[i][k] :- a[i];`` — replicate ``a`` along ``k``.

    The extra subscript of the target (relative to the source) names the
    replication element; its index set's size is the replication extent.
    """
    assert decl.source is not None
    elems = _decl_elements(decl, info)
    tgt_subs = [affine_subscript(s, elems, info.constants) for s in decl.target.subs]
    src_subs = [affine_subscript(s, elems, info.constants) for s in decl.source.subs]
    src_elems = {s.elem for s in src_subs if s.elem is not None}
    extra = [s for s in tgt_subs if s.elem is not None and s.elem not in src_elems]
    if len(extra) != 1:
        raise UCSemanticError(
            "copy mapping needs exactly one replication element in the target",
            decl.line,
            decl.col,
        )
    elem = extra[0].elem
    assert elem is not None
    set_name = elems[elem]
    extent = len(info.index_sets[set_name])
    layout = table.get(decl.target.base)
    table.add(layout.with_copy(elem, extent))


def build_layouts(info: ProgramInfo, *, apply_maps: bool = True) -> LayoutTable:
    """Default layouts for all arrays, then apply the program's map sections."""
    table = default_layouts(info.arrays)
    if apply_maps:
        for section in info.program.maps:
            for decl in section.decls:
                apply_map_decl(decl, table, info)
    return table
