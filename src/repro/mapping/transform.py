"""Source-to-source subscript rewriting under a mapping (paper §4).

"Given the map section for a program, the UC optimizer executes a
source-to-source transformation on the program so that index expressions
are updated to reflect the modified data allocation" — e.g. with
``permute (I) b[i+1] :- a[i]``, every subscript of ``b`` has 1 subtracted:
``a[i] = a[i] + b[i+1]`` becomes ``a[i] = a[i] + b[i+1-1]`` and simplifies
to ``a[i] = a[i] + b[i]``, which executes locally.

The rewriter adds each non-canonical layout offset to the corresponding
subscript and then constant-folds; it is used by the C* backend (whose
target has no mapping concept) and directly tested against the paper's
worked example.
"""

from __future__ import annotations

import copy
from typing import Optional

from ..lang import ast
from .layout import Layout, LayoutTable


def simplify(expr: ast.Expr) -> ast.Expr:
    """Constant-fold additive expressions: ``(i+1)-1`` → ``i`` etc."""
    if isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
        left = simplify(expr.left)
        right = simplify(expr.right)
        if isinstance(left, ast.IntLit) and isinstance(right, ast.IntLit):
            value = left.value + right.value if expr.op == "+" else left.value - right.value
            return ast.IntLit(line=expr.line, col=expr.col, value=value)
        if isinstance(right, ast.IntLit) and right.value == 0:
            return left
        if isinstance(left, ast.IntLit) and left.value == 0 and expr.op == "+":
            return right
        # (x + c1) + c2  ->  x + (c1 + c2)
        if (
            isinstance(right, ast.IntLit)
            and isinstance(left, ast.Binary)
            and left.op in ("+", "-")
            and isinstance(left.right, ast.IntLit)
        ):
            c1 = left.right.value if left.op == "+" else -left.right.value
            c2 = right.value if expr.op == "+" else -right.value
            total = c1 + c2
            if total == 0:
                return left.left
            op = "+" if total > 0 else "-"
            return ast.Binary(
                line=expr.line,
                col=expr.col,
                op=op,
                left=left.left,
                right=ast.IntLit(value=abs(total)),
            )
        return ast.Binary(line=expr.line, col=expr.col, op=expr.op, left=left, right=right)
    return expr


def _shift_subscript(sub: ast.Expr, offset: int) -> ast.Expr:
    """``sub`` adjusted by ``offset`` and simplified.

    The layout records physical = logical + offset, so the generated code
    (which indexes physical storage) uses ``sub + offset``.
    """
    if offset == 0:
        return simplify(sub)
    op = "+" if offset > 0 else "-"
    combined = ast.Binary(
        line=sub.line, col=sub.col, op=op, left=sub, right=ast.IntLit(value=abs(offset))
    )
    return simplify(combined)


def rewrite_subscripts(node: ast.Node, layouts: LayoutTable) -> ast.Node:
    """Rewrite every array reference in (a deep copy of) ``node``.

    Only permute offsets are rewritten — folds and copies change the
    physical *shape*, which the code generator handles when it emits the
    storage declaration, not the subscripts.
    """
    node = copy.deepcopy(node)
    _rewrite_in_place(node, layouts)
    return node


def _rewrite_in_place(node: ast.Node, layouts: LayoutTable) -> None:
    if isinstance(node, ast.Index) and node.base in layouts:
        layout = layouts.get(node.base)
        if any(layout.offsets):
            node.subs = [
                _shift_subscript(sub, layout.offsets[a]) if a < len(layout.offsets) else sub
                for a, sub in enumerate(node.subs)
            ]
    for child in ast.children(node):
        _rewrite_in_place(child, layouts)


def rewrite_program(program: ast.Program, layouts: LayoutTable) -> ast.Program:
    """A deep-copied program with all mapped subscripts rewritten and the
    map sections dropped (they are compiled away)."""
    out = rewrite_subscripts(program, layouts)
    assert isinstance(out, ast.Program)
    out.maps = []
    return out
