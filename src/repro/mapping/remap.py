"""Degraded-mode relayout: move virtual processors off dead PEs.

The paper's separation between logical references and physical placement
(§4) is what makes recovery possible at all: a program addresses virtual
processors, so when a physical PE dies the runtime may re-lay-out every
VP set over the surviving PEs and replay — no program text changes.

The simulator places VP ``v`` of a set cyclically on physical PE
``v mod n_pes``.  After a :class:`~repro.machine.errors.ProcessorFault`
the placement becomes ``v mod n_live`` over the live PEs, which is a
bijective renumbering of the whole set — exactly the shape of traffic the
``permute`` mapping machinery compiles to a precomputed congestion-free
message schedule, so each field of an affected VP set is charged one
``router_permute`` cycle at the set's *new* VP ratio.  Field data is a
logical (VP-indexed) view in the simulator, so the relayout only updates
VP ratios and charges the clock; the values stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import List, Set, Tuple


@dataclass
class RemapReport:
    """What one degraded-mode relayout did."""

    dead_pes: Tuple[int, ...]
    #: names of VP sets that had VPs on a dead PE (their fields moved)
    vpsets_moved: List[str] = dc_field(default_factory=list)
    #: names of fields relocated (one ``router_permute`` charge each)
    fields_moved: List[str] = dc_field(default_factory=list)
    #: VP sets whose time-slicing ratio grew because fewer PEs remain
    ratio_changes: List[Tuple[str, int]] = dc_field(default_factory=list)

    @property
    def permutes_charged(self) -> int:
        return len(self.fields_moved)


def vpset_uses_pe(vpset, pe: int, n_pes: int) -> bool:
    """Does any VP of ``vpset`` live on physical PE ``pe`` under the
    cyclic placement ``v mod n_pes``?  PE ``pe`` hosts VPs iff the set
    has at least ``pe + 1`` VPs (VP ``pe`` itself is the first)."""
    return 0 <= pe < n_pes and vpset.n_vps > pe


def remap_off_dead(machine) -> RemapReport:
    """Re-lay-out every VP set of ``machine`` over its live PEs.

    Recomputes each set's VP ratio from the live-PE count and charges one
    ``router_permute`` per field on each affected set (a precomputed
    bijective renumbering).  Deterministic: sets and fields are visited
    in allocation order, so both execution engines charge identically.
    """
    report = RemapReport(dead_pes=tuple(sorted(machine.dead_pes)))
    n_pes = machine.config.n_pes
    affected = set()
    for vps in machine.vpsets:
        if vps.recompute_ratio():
            report.ratio_changes.append((vps.name, vps.vp_ratio))
        if any(vpset_uses_pe(vps, pe, n_pes) for pe in machine.dead_pes):
            affected.add(id(vps))
            report.vpsets_moved.append(vps.name)
    for f in machine.fields:
        if id(f.vpset) in affected:
            machine.clock.charge("router_permute", vp_ratio=f.vpset.vp_ratio)
            report.fields_moved.append(f.name or f.vpset.name)
    return report
