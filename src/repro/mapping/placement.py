"""Map-driven shard placement: which shard owns each VP / array element.

A :class:`Placement` partitions every VP set and every array of a run
across ``K`` simulated CM-2 shards.  The rule is the PGAS/UPC block
distribution (arxiv 1309.2328): pick one partition axis, and the owner
of a coordinate ``c`` on an axis of extent ``e`` is the affine
``(c * K) // e`` — an O(1) computation with no per-element tables, so
local-vs-remote resolution at the shard boundary is as cheap as UPC's
address mapping.

*Arrays* are partitioned by **physical** position: the program's ``map``
section (permute offsets, axis transposes, folds, copies — see
:mod:`repro.mapping.layout`) is applied before the owner is computed.
That is what makes placement map-driven: a ``permute`` map that
transposes an array moves its elements to different shards, a ``fold``
map co-locates the wrapped halves on the same shard, and a ``copy`` map
replicates the array so reads are shard-local everywhere (the tier
classifier already turns those reads ``local``, which the shard splitter
treats as intra-shard by definition).

*VP sets* (construct grids) are partitioned along
``min(axis, rank - 1)`` of their own geometry, so one placement choice
coherently bands every grid and array of the run.

:func:`Placement.split` is the single source of truth for how one
remote reference divides into intra-shard work and cross-shard slabs —
the runtime sink (:class:`repro.machine.shards.ShardedMachine`), the
static lint (UC305 in :mod:`repro.analysis.commlints`) and the
placement search below all call it, so lint and engines can never
disagree.  Splits are memoized per ``(rc, layout, grid_shape, write)``:
steady-state sweeps pay one dict hit, never a re-partitioning.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .layout import Layout

__all__ = [
    "ShardSplit",
    "Placement",
    "derive_placement",
    "score_axes",
    "score_axes_verdicts",
]


class ShardSplit:
    """How one reference's traffic divides across shard owners.

    ``pairs`` holds ``((src, dst), elems)`` for every ordered shard pair
    with traffic: the unique source elements that must be gathered into
    the ``src → dst`` slab for one bulk exchange per sweep.  ``intra`` is
    the unique elements serviced inside their owner shard, and
    ``dst_counts[s]`` is how many referencing VPs shard ``s`` hosts
    (sized for per-shard tier charges).
    """

    __slots__ = ("intra", "cross", "pairs", "dst_counts")

    def __init__(
        self,
        intra: int,
        pairs: Tuple[Tuple[Tuple[int, int], int], ...],
        dst_counts: Tuple[int, ...],
    ) -> None:
        self.intra = int(intra)
        self.pairs = pairs
        self.cross = int(sum(c for _p, c in pairs))
        self.dst_counts = dst_counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardSplit(intra={self.intra}, cross={self.cross}, pairs={self.pairs})"


class Placement:
    """One partition of the machine into ``n_shards`` block shards."""

    def __init__(self, n_shards: int, axis: int = 0, policy: str = "block") -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)
        self.axis = int(axis)
        self.policy = policy
        #: shard ids still in service; whole-shard faults retire entries
        self.live: Tuple[int, ...] = tuple(range(n_shards))
        self._splits: Dict[Tuple, ShardSplit] = {}

    # -- owner computation --------------------------------------------------

    def grid_axis(self, rank: int) -> int:
        """Partition axis for a geometry of the given rank."""
        return min(self.axis, max(0, rank - 1))

    def owners_along(self, extent: int) -> np.ndarray:
        """Owner (index into ``live``) of every coordinate on one axis."""
        L = len(self.live)
        return (np.arange(int(extent), dtype=np.int64) * L) // max(1, int(extent))

    def owner_of(self, coord: int, extent: int) -> int:
        """O(1) affine owner of one coordinate — the UPC address map."""
        L = len(self.live)
        return self.live[(int(coord) * L) // max(1, int(extent))]

    def retire(self, shard: int) -> None:
        """Take one shard out of service; survivors absorb its bands."""
        if shard not in self.live:
            return
        if len(self.live) == 1:
            raise ValueError("cannot retire the last live shard")
        self.live = tuple(s for s in self.live if s != shard)
        self._splits.clear()

    def restore_all(self) -> None:
        """All shards back in service (cold boot)."""
        self.live = tuple(range(self.n_shards))
        self._splits.clear()

    # -- reference splitting ------------------------------------------------

    def split(
        self,
        rc,
        layout: Optional[Layout],
        grid_shape: Tuple[int, ...],
        write: bool,
    ) -> ShardSplit:
        """Divide one classified reference into intra/cross shard traffic.

        Reads move data ``element owner → referencing VP's shard``;
        writes move it the other way.  Memoized — the hot path is one
        tuple hash.
        """
        key = (rc, layout, tuple(grid_shape), bool(write), self.live)
        hit = self._splits.get(key)
        if hit is not None:
            return hit
        split = self._compute_split(rc, layout, grid_shape, write)
        self._splits[key] = split
        return split

    def _dst_counts(self, grid_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Referencing VPs hosted by each live shard (grid band sizes)."""
        L = len(self.live)
        total = int(np.prod(grid_shape)) if grid_shape else 1
        if not grid_shape or L == 1:
            return tuple([total] + [0] * (L - 1))
        g_a = self.grid_axis(len(grid_shape))
        ext = grid_shape[g_a]
        bands = np.bincount(self.owners_along(ext), minlength=L)
        per_coord = total // max(1, ext)
        return tuple(int(b) * per_coord for b in bands)

    def _compute_split(self, rc, layout, grid_shape, write) -> ShardSplit:
        L = len(self.live)
        dst_counts = self._dst_counts(grid_shape)
        if L == 1 or not grid_shape:
            return ShardSplit(int(np.prod(grid_shape)) if grid_shape else 1, (), dst_counts)
        rank = len(layout.shape) if layout is not None else 0
        if rc.axes is None or layout is None or rank == 0 or len(rc.axes) != rank:
            return self._split_opaque(grid_shape, dst_counts)
        return self._split_affine(rc, layout, grid_shape, write, dst_counts)

    def _split_opaque(self, grid_shape, dst_counts) -> ShardSplit:
        """Data-dependent (general router) traffic: no analytic structure,
        so model a uniform all-to-all — each shard's addresses land on
        every shard in proportion.  Deterministic by construction."""
        L = len(self.live)
        total = int(np.prod(grid_shape))
        per_pair = total // (L * L)
        pairs = tuple(
            ((self.live[a], self.live[b]), per_pair)
            for a in range(L)
            for b in range(L)
            if a != b and per_pair > 0
        )
        intra = total - per_pair * L * (L - 1)
        return ShardSplit(intra, pairs, dst_counts)

    def _split_affine(self, rc, layout, grid_shape, write, dst_counts) -> ShardSplit:
        L = len(self.live)
        g_a = self.grid_axis(len(grid_shape))

        # grid axes the element coordinates range over: the mesh below
        # enumerates each unique element exactly once per destination
        elem_axes = sorted({d[1] for d in rc.axes if d[0] in ("i", "m")})
        if elem_axes:
            mesh = np.meshgrid(
                *(np.arange(grid_shape[g], dtype=np.int64) for g in elem_axes),
                indexing="ij",
            )
            coord = dict(zip(elem_axes, mesh))
            cells = mesh[0].shape
        else:
            coord = {}
            cells = (1,)

        # physical coordinate of each element along the partition slot:
        # the map section is applied exactly as Layout.physical_position
        perm = layout.axis_perm or tuple(range(rank_of(layout)))
        p_slot = min(self.axis, rank_of(layout) - 1)
        a_log = perm[p_slot]
        ext = max(1, layout.shape[a_log])
        d = rc.axes[a_log]
        if d[0] == "u":
            logical = np.full(cells, int(d[1]), dtype=np.int64)
        elif d[0] == "i":
            logical = coord[d[1]] + int(d[2])
        else:  # mirror
            logical = int(d[2]) - coord[d[1]]
        fold = layout.fold
        pos = logical
        if fold is not None and fold.axis == a_log:
            if fold.kind == "wrap":
                pos = np.where(pos >= fold.param, pos - fold.param, pos)
            else:
                pos = np.where(2 * pos > fold.param, fold.param - pos, pos)
        off = layout.offsets[a_log] if layout.offsets else 0
        pos = np.clip(pos + off, 0, ext - 1)
        src = np.broadcast_to((pos * L) // ext, cells)

        pair_counts = np.zeros(L * L, dtype=np.int64)
        if g_a in coord:
            # the referencing VP's band is bound to an element coordinate
            dst = (coord[g_a] * L) // grid_shape[g_a]
            dst = np.broadcast_to(dst, cells)
            np.add.at(pair_counts, (src * L + dst).ravel(), 1)
        else:
            # every shard's VPs need the same elements: each element is
            # slabbed once toward every live destination band
            hist = np.bincount(src.ravel(), minlength=L)
            for b in range(L):
                pair_counts[np.arange(L) * L + b] += hist
        mat = pair_counts.reshape(L, L)
        intra = int(np.trace(mat))
        pairs = []
        for a in range(L):
            for b in range(L):
                if a == b or mat[a, b] == 0:
                    continue
                pair = (self.live[a], self.live[b])
                if write:
                    pair = (pair[1], pair[0])  # writer shard pushes the slab
                pairs.append((pair, int(mat[a, b])))
        return ShardSplit(intra, tuple(pairs), dst_counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Placement(n_shards={self.n_shards}, axis={self.axis}, "
            f"policy={self.policy!r}, live={self.live})"
        )


def rank_of(layout: Layout) -> int:
    return max(1, len(layout.shape))


def score_axes(
    info,
    layouts,
    n_shards: int,
    axes: Optional[Sequence[int]] = None,
) -> List[Tuple[int, int]]:
    """Predicted cross-shard slab elements per sweep for each candidate
    partition axis, as ``(cross_total, axis)`` sorted best-first.

    Uses the static reference verdicts (the same realisation the linter
    and sanitizer trust) pushed through :meth:`Placement.split`, so the
    search optimizes exactly the quantity the runtime ledger reports.
    """
    from ..analysis.linter import build_verdicts  # lazy: analysis imports mapping

    _model, verdicts = build_verdicts(info, layouts)
    return score_axes_verdicts(verdicts, _model.layouts, n_shards, axes)


def score_axes_verdicts(
    verdicts,
    layout_table,
    n_shards: int,
    axes: Optional[Sequence[int]] = None,
) -> List[Tuple[int, int]]:
    """The :func:`score_axes` core over already-built verdicts.

    The UC305 lint calls this directly with the verdicts the lint pass
    already holds, so the lint and the runtime axis search can never
    score a program differently."""
    from ..interp.commtiers import decide_tier
    from ..machine.config import CostTable

    costs = CostTable()
    max_rank = 1
    for v in verdicts:
        max_rank = max(max_rank, len(v.ref.axes))
    candidates = list(axes) if axes is not None else list(range(max_rank))
    scored: List[Tuple[int, int]] = []
    for axis in candidates:
        pl = Placement(n_shards, axis=axis, policy="map")
        cross = 0
        for v in verdicts:
            grid_shape = tuple(a.extent for a in v.ref.axes)
            for write, rc in ((False, v.rc), (True, v.rc_write)):
                if rc is None:
                    continue
                tier = decide_tier(rc, costs, write=write)
                if tier in (None, "local", "broadcast"):
                    continue
                layout = (
                    layout_table.get(v.ref.node.base)
                    if v.ref.node.base in layout_table
                    else None
                )
                cross += pl.split(rc, layout, grid_shape, write).cross
            # operand-grid realisations (reduction operands) ride the
            # same verdicts: rc already covers the product grid, which
            # is the geometry the runtime splits over
        scored.append((cross, axis))
    scored.sort()
    return scored


def derive_placement(
    info,
    layouts,
    n_shards: int,
    policy: str = "map",
) -> Placement:
    """Build the placement for one program.

    ``"block"`` is the naive baseline: band everything along axis 0,
    layouts ignored for the axis choice (they still position elements).
    ``"map"`` searches candidate partition axes under the program's own
    ``map``-section layouts and keeps the axis with the least predicted
    cross-shard slab traffic — placement as a performance lever.
    """
    if policy == "block" or n_shards == 1:
        return Placement(n_shards, axis=0, policy=policy)
    if policy != "map":
        raise ValueError(f"unknown placement policy {policy!r}")
    try:
        scored = score_axes(info, layouts, n_shards)
    except Exception:
        scored = []
    axis = scored[0][1] if scored else 0
    return Placement(n_shards, axis=axis, policy="map")
