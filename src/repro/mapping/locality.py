"""Reference classification: what does an array access cost?

Given the *values* each subscript takes across a parallel grid, classify
the reference into the CM-2's communication tiers:

* ``local``     — every VP reads/writes its own memory (ALU cost only);
* ``news``      — a constant-offset neighbour fetch (cheap grid shifts);
* ``spread``    — the value is constant along some grid axes: a log-depth
  spread/copy-scan supplies it (e.g. ``d[i][k]`` inside an ``(i,j,k)``
  grid, or row reads ``b[k][i]`` with a scalar ``k``);
* ``broadcast`` — one element for everybody (front-end broadcast);
* ``router``    — data-dependent or permuting access (general router).

Classification is *numeric*: the interpreter hands in the realised
subscript arrays, and we compare them against the grid coordinates.  This
makes the classifier exact for any expression the program can write —
including dynamic shifts like ``a[i - power2(j)]`` whose distance is only
known at run time — at the price of a small amount of arithmetic per
executed statement (vectorised, so it stays cheap).

The active :class:`~repro.mapping.layout.Layout` adjusts the verdict:
permute offsets cancel shifts, folds legitimise mirror/wrap accesses, and
copies absorb spreads along their replication element.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .layout import Layout

Subscript = Union[int, float, np.ndarray]


@dataclass(frozen=True)
class RefClass:
    """Verdict for one array reference."""

    kind: str  # 'local' | 'news' | 'spread' | 'broadcast' | 'router'
    news_distance: int = 0
    spread_extent: int = 1  # product of extents the value must be spread over
    detail: str = ""
    #: per-subscript structure, in subscript order — ``('u', value)`` for a
    #: uniform subscript, ``('i', grid_axis, raw_shift)`` for an identity
    #: match, ``('m', grid_axis, param)`` for a mirror.  ``None`` when the
    #: access is data-dependent (no analytic structure exists).  The
    #: communication-tier dispatcher uses this to build NEWS shift recipes.
    axes: Optional[Tuple[Tuple, ...]] = None
    #: True when the reference is a pure axis-order transpose under an
    #: active ``permute`` map — eligible for the precomputed-permutation
    #: tier instead of the general router.
    permutable: bool = False

    @property
    def is_remote(self) -> bool:
        return self.kind != "local"


@dataclass
class _AxisVerdict:
    kind: str  # 'uniform' | 'identity' | 'mirror' | 'data'
    grid_axis: int = -1
    shift: int = 0
    mirror_param: int = 0


def _constant_of(arr: np.ndarray) -> Optional[int]:
    """The single value of ``arr`` if it is constant, else None."""
    if arr.size == 0:
        return 0
    flat = arr.reshape(-1)
    first = flat[0]
    if np.all(flat == first):
        return int(first)
    return None


def _axis_verdict(
    sub: Subscript,
    positions,
    used: List[bool],
    grid_shape: Tuple[int, ...],
) -> _AxisVerdict:
    """Classify one subscript against the grid position coordinates.

    ``positions`` is a zero-argument callable yielding the coordinate
    grids (``np.indices``) — only the slow path below materialises them.
    """
    if not isinstance(sub, np.ndarray):
        return _AxisVerdict("uniform", shift=int(sub))
    # Stride fast path: a broadcast view varying along at most one grid
    # axis (axis_values grids, and anything sliced from them) answers the
    # full-grid constancy probes from its 1-D underlying vector.  For any
    # other axis g' the probe ``sub - pos[g']`` varies along the view's
    # own axis, so only the varying axis can match — the verdict is
    # identical to the materialised comparison at O(extent) cost.
    if sub.ndim == len(grid_shape) and sub.shape == tuple(grid_shape):
        varying = [
            g
            for g, st in enumerate(sub.strides)
            if st != 0 and sub.shape[g] > 1
        ]
        if len(varying) <= 1:
            line = sub[
                tuple(
                    slice(None) if g in varying else 0
                    for g in range(sub.ndim)
                )
            ].reshape(-1)
            const = _constant_of(line)
            if const is not None:
                return _AxisVerdict("uniform", shift=const)
            g = varying[0]
            if not used[g]:
                coords = np.arange(line.size, dtype=np.int64)
                diff = _constant_of(line - coords)
                if diff is not None:
                    return _AxisVerdict("identity", grid_axis=g, shift=diff)
                summ = _constant_of(line + coords)
                if summ is not None:
                    return _AxisVerdict(
                        "mirror", grid_axis=g, mirror_param=summ
                    )
            return _AxisVerdict("data")
    const = _constant_of(sub)
    if const is not None:
        return _AxisVerdict("uniform", shift=const)
    for g, pos in enumerate(positions()):
        if used[g]:
            continue
        diff = _constant_of(sub - pos)
        if diff is not None:
            return _AxisVerdict("identity", grid_axis=g, shift=diff)
        summ = _constant_of(sub + pos)
        if summ is not None:
            return _AxisVerdict("mirror", grid_axis=g, mirror_param=summ)
    return _AxisVerdict("data")


def classify_reference(
    subs: Sequence[Subscript],
    grid_shape: Tuple[int, ...],
    axis_elems: Sequence[str],
    layout: Layout,
    *,
    positions=None,
) -> RefClass:
    """Classify an array read.

    Parameters
    ----------
    subs:
        Realised subscript values, one per array axis — scalars or arrays
        shaped like the grid.
    grid_shape / axis_elems:
        The parallel grid's shape and the element identifier bound to each
        grid axis.
    layout:
        The referenced array's layout.
    positions:
        Pre-computed ``np.indices(grid_shape)`` — either the list itself
        or a zero-argument callable returning it (e.g. the grid context's
        cached ``positions`` method).  Passing the callable keeps the
        O(grid) coordinate arrays unmaterialised when every subscript
        takes the stride fast path, which is the common case.
    """
    if not grid_shape:
        # host (scalar) context: the front end reads one element
        return RefClass("broadcast", detail="host read")
    _pos_cache: List = []

    def pos_fn():
        if not _pos_cache:
            if positions is None:
                _pos_cache.append(list(np.indices(grid_shape)))
            elif callable(positions):
                _pos_cache.append(list(positions()))
            else:
                _pos_cache.append(list(positions))
        return _pos_cache[0]

    used = [False] * len(grid_shape)
    verdicts: List[_AxisVerdict] = []
    for sub in subs:
        v = _axis_verdict(sub, pos_fn, used, grid_shape)
        if v.kind == "data":
            return RefClass("router", detail="data-dependent subscript", axes=None)
        if v.grid_axis >= 0:
            used[v.grid_axis] = True
        verdicts.append(v)

    return _from_verdicts(verdicts, used, grid_shape, axis_elems, layout)


def _from_verdicts(
    verdicts: List[_AxisVerdict],
    used: List[bool],
    grid_shape: Tuple[int, ...],
    axis_elems: Sequence[str],
    layout: Layout,
) -> RefClass:
    """Turn per-subscript axis verdicts into the final :class:`RefClass`.

    Shared between the numeric classifier above and the analytic
    :func:`classify_affine` fast path below — both produce the same
    verdict structures, so the tier decision is identical.
    """
    axes: Tuple[Tuple, ...] = tuple(
        ("u", v.shift)
        if v.kind == "uniform"
        else ("m", v.grid_axis, v.mirror_param)
        if v.kind == "mirror"
        else ("i", v.grid_axis, v.shift)
        for v in verdicts
    )

    if all(v.kind == "uniform" for v in verdicts):
        return RefClass("broadcast", detail="single element for all VPs", axes=axes)

    perm = layout.axis_perm or tuple(range(layout.rank))
    fold = layout.fold

    news_distance = 0
    needs_router = False
    mirror_router = False
    detail_bits: List[str] = []
    matched: List[Tuple[int, int]] = []  # (layout slot, grid axis)

    for a, v in enumerate(verdicts):
        if v.kind == "uniform":
            # slice read: handled below together with unused axes (spread)
            continue
        if v.kind == "mirror":
            if (
                fold is not None
                and fold.axis == a
                and fold.kind == "mirror"
                and fold.param == v.mirror_param
            ):
                detail_bits.append(f"axis {a}: mirror absorbed by fold")
                matched.append((perm.index(a), v.grid_axis))
                continue
            needs_router = True
            mirror_router = True
            detail_bits.append(f"axis {a}: mirrored access")
            continue
        # identity with shift
        eff = v.shift + layout.offsets[a]
        if (
            fold is not None
            and fold.axis == a
            and fold.kind == "wrap"
            and v.shift == fold.param
        ):
            eff = layout.offsets[a]
            detail_bits.append(f"axis {a}: wrap absorbed by fold")
        matched.append((perm.index(a), v.grid_axis))
        news_distance += abs(int(eff))

    # the matched grid axes must respect the layout's physical axis order:
    # walking the array's physical slots in order, the grid axes they bind
    # to must increase — otherwise the access permutes data (router).
    by_slot = sorted(matched)
    grid_axes_in_slot_order = [g for _s, g in by_slot]
    order_router = grid_axes_in_slot_order != sorted(grid_axes_in_slot_order)
    if order_router:
        needs_router = True
        detail_bits.append(
            f"axis order {grid_axes_in_slot_order} permutes the grid alignment"
        )

    # grid axes not consumed by any subscript: the value is constant along
    # them and must be spread (unless a copy layout already replicated it)
    spread_extent = 1
    for g, elem in enumerate(axis_elems):
        if used[g] or grid_shape[g] == 1:
            continue
        if layout.copy_elem is not None and elem == layout.copy_elem:
            detail_bits.append(f"grid axis {g} ({elem}): absorbed by copy")
            continue
        spread_extent *= grid_shape[g]

    # uniform subscripts on some axes while others match: a slice is
    # fetched — model as a spread over the matched geometry
    has_uniform_axis = any(
        v.kind == "uniform" for v in verdicts
    ) and layout.rank > 0 and len(verdicts) > 1
    if has_uniform_axis and spread_extent == 1:
        if not (layout.copy_elem is not None):
            spread_extent = max(
                2, min(grid_shape)
            )  # slice must travel across at least one axis
            detail_bits.append("slice read via spread")

    if needs_router:
        # a pure axis-order transpose under an active permute map can be
        # serviced by a precomputed permutation recipe instead of the
        # general router (the map proves the pattern is a bijection)
        permutable = (
            order_router and not mirror_router and layout.axis_perm is not None
        )
        return RefClass(
            "router", detail="; ".join(detail_bits), axes=axes, permutable=permutable
        )
    if spread_extent > 1:
        return RefClass(
            "spread",
            news_distance=news_distance,
            spread_extent=spread_extent,
            detail="; ".join(detail_bits) or "value constant along unused grid axes",
            axes=axes,
        )
    if news_distance > 0:
        return RefClass(
            "news", news_distance=news_distance, detail="; ".join(detail_bits), axes=axes
        )
    return RefClass("local", detail="; ".join(detail_bits), axes=axes)


def classify_write(
    subs: Sequence[Subscript],
    grid_shape: Tuple[int, ...],
    axis_elems: Sequence[str],
    layout: Layout,
    *,
    positions=None,
) -> RefClass:
    """Classify an array write.

    Same analysis as reads; the interpreter charges ``router_send`` for
    anything that is not local/news (scatters combine in the router), and
    collision checking (the single-assignment rule) happens separately.
    """
    rc = classify_reference(
        subs, grid_shape, axis_elems, layout, positions=positions
    )
    if rc.kind in ("broadcast", "spread"):
        # a non-injective write pattern goes through the router
        return RefClass("router", detail=f"write: {rc.detail}", axes=rc.axes)
    return rc


def classify_affine(
    descs: Sequence[Tuple],
    grid_shape: Tuple[int, ...],
    axis_elems: Sequence[str],
    layout: Layout,
) -> RefClass:
    """Classify a reference whose subscripts are *known* single-axis affine.

    ``descs`` holds one entry per subscript:

    * ``('u', value)`` — a uniform (grid-constant) subscript;
    * ``('a', grid_axis, values)`` — the subscript equals ``values[k]`` at
      coordinate ``k`` of ``grid_axis`` and is constant along every other
      grid axis (``values`` is the 1-D int array of realised values, any
      offset already applied).

    This is the O(extent) analogue of :func:`classify_reference`: because
    each subscript varies along at most one grid axis, the full-grid
    constancy probes (``sub - pos[g]`` / ``sub + pos[g]``) collapse to 1-D
    comparisons against ``arange`` — a subscript varying along axis ``g``
    cannot be constant relative to any other axis, and a grid-constant one
    is uniform outright.  The verdicts are therefore *identical* to what
    the numeric classifier would return on the materialised subscript
    arrays, at a fraction of the cost.  The frontier engine's sweep
    analysis uses this to price references without building full-grid
    subscripts (see ``repro.interp.frontier``).
    """
    if not grid_shape:
        return RefClass("broadcast", detail="host read")
    used = [False] * len(grid_shape)
    verdicts: List[_AxisVerdict] = []
    for desc in descs:
        if desc[0] == "u":
            verdicts.append(_AxisVerdict("uniform", shift=int(desc[1])))
            continue
        _tag, g, vals = desc
        arr = np.asarray(vals)
        const = _constant_of(arr)
        if const is not None:
            verdicts.append(_AxisVerdict("uniform", shift=const))
            continue
        v = _AxisVerdict("data")
        if not used[g]:
            coords = np.arange(arr.size, dtype=arr.dtype)
            diff = _constant_of(arr - coords)
            if diff is not None:
                v = _AxisVerdict("identity", grid_axis=g, shift=diff)
            else:
                summ = _constant_of(arr + coords)
                if summ is not None:
                    v = _AxisVerdict("mirror", grid_axis=g, mirror_param=summ)
        if v.kind == "data":
            return RefClass("router", detail="data-dependent subscript", axes=None)
        used[g] = True
        verdicts.append(v)

    return _from_verdicts(verdicts, used, grid_shape, axis_elems, layout)


def classify_write_affine(
    descs: Sequence[Tuple],
    grid_shape: Tuple[int, ...],
    axis_elems: Sequence[str],
    layout: Layout,
) -> RefClass:
    """Write-side :func:`classify_affine` (same remap as classify_write)."""
    rc = classify_affine(descs, grid_shape, axis_elems, layout)
    if rc.kind in ("broadcast", "spread"):
        return RefClass("router", detail=f"write: {rc.detail}", axes=rc.axes)
    return rc
