"""Elapsed-time accounting for the simulated machine.

Every Paris-level operation charges the machine :class:`Clock`.  The clock
keeps both the running total (simulated microseconds) and per-class
counters so tests can assert *which* kind of traffic a program generated —
the mapping experiments hinge on "this program issued zero router ops".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterator, List, Optional, Tuple

from .config import COST_KINDS, HOST_KINDS, CostTable


@dataclass
class CostRecord:
    """One aggregated line of the cost ledger."""

    kind: str
    count: int = 0
    time_us: float = 0.0


class Clock:
    """Accumulates simulated elapsed time and per-class op counters.

    The clock also supports *regions*: named nested intervals used by the
    benchmark harness to attribute time to program phases
    (initialisation vs. iteration, UC overhead vs. Paris work).
    """

    def __init__(self, costs: CostTable) -> None:
        self.costs = costs
        self._time_us: float = 0.0
        self._records: Dict[str, CostRecord] = {
            kind: CostRecord(kind) for kind in COST_KINDS
        }
        self._region_stack: List[Tuple[str, float]] = []
        self.regions: Dict[str, float] = {}
        #: communication-tier dispatch counters ('local'/'news'/'spread'/
        #: 'broadcast'/'permute'/'router' -> times chosen).  Observability
        #: only — deliberately excluded from :meth:`fingerprint` so both
        #: engines stay comparable whatever their dispatch bookkeeping.
        self.tier_counts: Dict[str, int] = {}
        #: frontier-engine counters ('constructs'/'fallbacks'/'full_sweeps'/
        #: 'compressed_sweeps'/'active_lanes'/'domain_lanes'/...).  Like
        #: ``tier_counts`` these are observability only and excluded from
        #: :meth:`fingerprint`, but they checkpoint/restore with the clock
        #: so replayed sweeps are not double-counted.
        self.frontier_counts: Dict[str, int] = {}
        #: kernel-fusion counters ('constructs'/'unfusable'/'fused_segments'/
        #: 'unfused_segments'/'fused_sweeps'/'fallback_sweeps'/
        #: 'charge_table_hits').  Observability only, excluded from
        #: :meth:`fingerprint`, checkpointed like ``frontier_counts``.
        self.fusion_counts: Dict[str, int] = {}
        #: per-compressed-sweep ``(active, domain)`` lane counts, in
        #: execution order — the --stats shrink-ratio report reads this.
        self.frontier_trace: List[Tuple[int, int]] = []
        #: fault-injection observer, installed by
        #: :meth:`repro.machine.machine.Machine.install_faults`; called as
        #: ``hook(kind, count)`` before each charge is applied.  ``None``
        #: (the default) costs one pointer test per charge.
        self.fault_hook = None
        #: sharded-execution observer, installed by
        #: :class:`repro.machine.shards.ShardedMachine`; receives every
        #: remote-reference tier charge via :meth:`note_shard_ref` so
        #: per-shard clocks and the intershard ledger can account the
        #: reference without touching this clock's charge stream (the
        #: global fingerprint stays bit-identical for every shard count).
        self.shard_sink = None

    # -- charging ----------------------------------------------------------

    def charge(self, kind: str, *, count: int = 1, vp_ratio: int = 1) -> float:
        """Charge ``count`` operations of class ``kind``.

        CM-side charges scale with the VP ratio (virtual processors are
        time-sliced over the physical ones) and each ``charge`` call of a
        CM-side kind additionally pays one front-end ``dispatch`` (a
        Paris instruction is issued once, however many micro-steps it
        sequences).  Returns the time charged, dispatch included.
        """
        if kind not in self._records:
            raise KeyError(f"unknown cost kind: {kind!r}")
        if self.fault_hook is not None:
            # observe before any accounting: a fault raised here leaves the
            # clock (and the fields the caller was about to touch) untouched
            self.fault_hook(kind, count)
        base = getattr(self.costs, kind)
        if kind in HOST_KINDS:
            dt = base * count
        else:
            dt = base * count * max(1, vp_ratio)
        self._time_us += dt
        rec = self._records[kind]
        rec.count += count
        rec.time_us += dt
        if kind not in HOST_KINDS and kind != "dispatch":
            drec = self._records["dispatch"]
            ddt = self.costs.dispatch
            self._time_us += ddt
            drec.count += 1
            drec.time_us += ddt
            dt += ddt
        return dt

    def count_tier(self, tier: str) -> None:
        """Record that one array reference was dispatched to ``tier``."""
        self.tier_counts[tier] = self.tier_counts.get(tier, 0) + 1

    def note_shard_ref(self, tier, rc, layout, grid_shape, write) -> None:
        """Forward one remote-reference observation to the shard sink.

        No-op (one pointer test) on unsharded machines.  Sharded runs
        route the observation to ``ShardedMachine.observe_ref``, which
        splits the reference across shard owners and charges the
        per-shard clocks — never this clock, so fingerprints are
        shard-count independent by construction.
        """
        sink = self.shard_sink
        if sink is not None:
            sink.observe_ref(tier, rc, layout, grid_shape, write)

    def note_shard_reduce(
        self, op, order_safe, n_vps, vp_ratio, grid_shape
    ) -> None:
        """Forward one reduction observation to the shard sink.

        Like :meth:`note_shard_ref`, a no-op on unsharded machines.
        Sharded runs route it to ``ShardedMachine.observe_reduce``, which
        consults the site's UC5xx determinism verdict (``order_safe``):
        UC501-proven sites pre-combine per-shard partials locally, while
        unproven sites ship their partials through the intershard tier in
        shard order — never touching this clock, so the base fingerprint
        stays shard-count independent.
        """
        sink = self.shard_sink
        if sink is not None:
            sink.observe_reduce(op, order_safe, n_vps, vp_ratio, grid_shape)

    def count_frontier(self, key: str, n: int = 1) -> None:
        """Bump one frontier-engine counter (observability only)."""
        self.frontier_counts[key] = self.frontier_counts.get(key, 0) + n

    def count_fusion(self, key: str, n: int = 1) -> None:
        """Bump one kernel-fusion counter (observability only)."""
        self.fusion_counts[key] = self.fusion_counts.get(key, 0) + n

    def trace_frontier(self, active: int, domain: int) -> None:
        """Record one compressed sweep's active-set size vs its domain."""
        self.frontier_trace.append((int(active), int(domain)))
        self.count_frontier("compressed_sweeps")
        self.count_frontier("active_lanes", int(active))
        self.count_frontier("domain_lanes", int(domain))

    def charge_scan(self, n_vps: int, *, vp_ratio: int = 1, steps_per_level: int = 1) -> float:
        """Charge one log-depth scan/reduction over ``n_vps`` processors."""
        levels = max(1, math.ceil(math.log2(max(2, n_vps))))
        return self.charge(
            "scan_step", count=levels * steps_per_level, vp_ratio=vp_ratio
        )

    def replay(self, entries) -> None:
        """Re-issue a recorded charge table.

        Entries are the tuples the fusion compiler records while tracing
        one sweep: ``("c", kind, count, vp_ratio)`` for a plain charge,
        ``("s", n_vps, vp_ratio, steps_per_level)`` for a scan,
        ``("t", tier)`` for a communication-tier dispatch count, and
        ``("x", tier, rc, layout, grid_shape, write)`` for a shard-sink
        observation, and ``("r", op, order_safe, n_vps, vp_ratio,
        grid_shape)`` for a shard-sink reduction observation (both
        ignored unless a shard sink is installed, so charge tables are
        shared across shard counts).  Batched execution
        replays the same table once per active lane, which is what keeps
        per-lane fingerprints identical to solo runs.
        """
        for e in entries:
            tag = e[0]
            if tag == "c":
                self.charge(e[1], count=e[2], vp_ratio=e[3])
            elif tag == "s":
                self.charge_scan(e[1], vp_ratio=e[2], steps_per_level=e[3])
            elif tag == "x":
                if self.shard_sink is not None:
                    self.note_shard_ref(e[1], e[2], e[3], e[4], e[5])
            elif tag == "r":
                if self.shard_sink is not None:
                    self.note_shard_reduce(e[1], e[2], e[3], e[4], e[5])
            else:
                self.count_tier(e[1])

    def advance(self, dt: float) -> None:
        """Advance the clock by a raw amount (used by the seqc model)."""
        if dt < 0:
            raise ValueError("cannot move the clock backwards")
        self._time_us += dt

    # -- reading -----------------------------------------------------------

    @property
    def time_us(self) -> float:
        """Total simulated elapsed time in microseconds."""
        return self._time_us

    @property
    def time_ms(self) -> float:
        return self._time_us / 1000.0

    @property
    def time_s(self) -> float:
        return self._time_us / 1_000_000.0

    def count(self, kind: str) -> int:
        """Number of operations charged under ``kind`` so far."""
        return self._records[kind].count

    def time_in(self, kind: str) -> float:
        """Simulated time attributed to ``kind`` so far."""
        return self._records[kind].time_us

    def ledger(self) -> List[CostRecord]:
        """All cost records with non-zero counts, most expensive first."""
        recs = [r for r in self._records.values() if r.count]
        return sorted(recs, key=lambda r: -r.time_us)

    def fingerprint(self) -> Tuple:
        """Hashable digest of the full cost state: total time plus every
        (kind, count, time) line, sorted by kind.

        Two executions took the same simulated path iff their fingerprints
        are equal — the differential tests use this to hold the compiled
        plan engine to the tree-walker's exact charge sequence.
        """
        lines = tuple(
            (kind, rec.count, rec.time_us)
            for kind, rec in sorted(self._records.items())
            if rec.count
        )
        return (self._time_us, lines)

    # -- regions -----------------------------------------------------------

    def begin_region(self, name: str) -> None:
        self._region_stack.append((name, self._time_us))

    def end_region(self) -> Tuple[str, float]:
        if not self._region_stack:
            raise RuntimeError("end_region with no open region")
        name, start = self._region_stack.pop()
        elapsed = self._time_us - start
        self.regions[name] = self.regions.get(name, 0.0) + elapsed
        return name, elapsed

    def region(self, name: str) -> "_RegionCtx":
        """Context manager: ``with clock.region("iterate"): ...``"""
        return _RegionCtx(self, name)

    # -- checkpointing -----------------------------------------------------

    def dump_state(self) -> dict:
        """Full mutable state, for checkpoint/restore.  Unlike
        :meth:`snapshot` this captures regions and tier counters too, so
        a restored clock is indistinguishable from one that never ran the
        rolled-back charges."""
        return {
            "time": self._time_us,
            "records": {k: (r.count, r.time_us) for k, r in self._records.items()},
            "region_stack": list(self._region_stack),
            "regions": dict(self.regions),
            "tier_counts": dict(self.tier_counts),
            "frontier_counts": dict(self.frontier_counts),
            "frontier_trace": list(self.frontier_trace),
            "fusion_counts": dict(self.fusion_counts),
            "shard": (
                self.shard_sink.dump_state()
                if self.shard_sink is not None
                else None
            ),
        }

    def load_state(self, state: dict) -> None:
        """Restore state captured by :meth:`dump_state`."""
        self._time_us = state["time"]
        for kind, rec in self._records.items():
            count, time_us = state["records"].get(kind, (0, 0.0))
            rec.count = count
            rec.time_us = time_us
        self._region_stack = list(state["region_stack"])
        self.regions = dict(state["regions"])
        self.tier_counts = dict(state["tier_counts"])
        self.frontier_counts = dict(state.get("frontier_counts", {}))
        self.frontier_trace = list(state.get("frontier_trace", []))
        self.fusion_counts = dict(state.get("fusion_counts", {}))
        if self.shard_sink is not None and state.get("shard") is not None:
            self.shard_sink.load_state(state["shard"])

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> "ClockSnapshot":
        """Capture current totals; subtract two snapshots to get a delta."""
        return ClockSnapshot(
            time_us=self._time_us,
            counts={k: r.count for k, r in self._records.items()},
            times={k: r.time_us for k, r in self._records.items()},
        )

    def reset(self) -> None:
        """Zero the clock and all counters (new experiment run)."""
        self._time_us = 0.0
        for rec in self._records.values():
            rec.count = 0
            rec.time_us = 0.0
        self._region_stack.clear()
        self.regions.clear()
        self.tier_counts.clear()
        self.frontier_counts.clear()
        self.frontier_trace.clear()
        self.fusion_counts.clear()
        if self.shard_sink is not None:
            self.shard_sink.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(t={self._time_us:.1f}us)"


@dataclass(frozen=True)
class ClockSnapshot:
    """Immutable capture of clock totals; supports delta via subtraction."""

    time_us: float
    counts: Dict[str, int]
    times: Dict[str, float]

    def __sub__(self, earlier: "ClockSnapshot") -> "ClockSnapshot":
        return ClockSnapshot(
            time_us=self.time_us - earlier.time_us,
            counts={
                k: self.counts[k] - earlier.counts.get(k, 0) for k in self.counts
            },
            times={k: self.times[k] - earlier.times.get(k, 0.0) for k in self.times},
        )


class _RegionCtx:
    def __init__(self, clock: Clock, name: str) -> None:
        self._clock = clock
        self._name = name

    def __enter__(self) -> Clock:
        self._clock.begin_region(self._name)
        return self._clock

    def __exit__(self, *exc: object) -> None:
        self._clock.end_region()
