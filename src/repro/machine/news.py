"""NEWS-grid communication: cheap nearest-neighbour shifts.

The CM-2 embeds every VP-set geometry in a grid whose neighbours are wired
directly (the North-East-West-South network).  Fetching from a neighbour at
grid distance *d* along one axis costs *d* NEWS hops — far cheaper than the
general router.  This module implements ``get_from_news`` (fetch a value
from the VP ``offset`` steps away along ``axis``) with selectable edge
behaviour.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .errors import GeometryError
from .field import Field, ScalarLike


def news_shifted(
    field: Field,
    axis: int,
    offset: int,
    *,
    border: Union[str, ScalarLike] = 0,
) -> np.ndarray:
    """Return the array of values each VP sees when it fetches from the VP
    ``offset`` positions away along ``axis`` (positive = higher coordinate).

    ``border`` controls what VPs at the edge receive: a scalar fill value,
    ``"wrap"`` for torus wraparound, or ``"clamp"`` to replicate the edge.
    The machine clock is charged ``|offset|`` NEWS hops.
    """
    vps = field.vpset
    if not 0 <= axis < vps.rank:
        raise GeometryError(f"axis {axis} out of range for rank {vps.rank}")
    data = field.data
    if offset == 0:
        return data.copy()

    hops = abs(int(offset))
    vps.machine.clock.charge("news", count=hops, vp_ratio=vps.vp_ratio)

    if border == "wrap":
        return np.roll(data, -offset, axis=axis)

    # non-wrapping shift: VP at coordinate c reads coordinate c+offset
    out = np.empty_like(data)
    n = data.shape[axis]
    if hops >= n:
        if border == "clamp":
            edge_index = n - 1 if offset > 0 else 0
            out[...] = np.take(data, [edge_index], axis=axis)
        else:
            out[...] = np.asarray(border, dtype=data.dtype)
        return out

    src = [slice(None)] * data.ndim
    dst = [slice(None)] * data.ndim
    pad = [slice(None)] * data.ndim
    if offset > 0:
        src[axis] = slice(offset, None)
        dst[axis] = slice(None, n - offset)
        pad[axis] = slice(n - offset, None)
        edge = slice(n - 1, n)
    else:
        src[axis] = slice(None, n + offset)  # offset negative
        dst[axis] = slice(-offset, None)
        pad[axis] = slice(None, -offset)
        edge = slice(0, 1)
    out[tuple(dst)] = data[tuple(src)]
    if border == "clamp":
        edge_sel = [slice(None)] * data.ndim
        edge_sel[axis] = edge
        out[tuple(pad)] = data[tuple(edge_sel)]
    else:
        out[tuple(pad)] = np.asarray(border, dtype=data.dtype)
    return out


def get_from_news(
    dest: Field,
    source: Field,
    axis: int,
    offset: int,
    *,
    border: Union[str, ScalarLike] = 0,
) -> None:
    """``dest := source[coord+offset]`` under ``dest``'s current context."""
    dest.same_vpset(source)
    shifted = news_shifted(source, axis, offset, border=border)
    mask = dest.vpset.context
    dest.data[mask] = shifted[mask].astype(dest.dtype)
