"""NEWS-grid communication: cheap nearest-neighbour shifts.

The CM-2 embeds every VP-set geometry in a grid whose neighbours are wired
directly (the North-East-West-South network).  Fetching from a neighbour at
grid distance *d* along one axis costs *d* NEWS hops — far cheaper than the
general router.  This module implements ``get_from_news`` (fetch a value
from the VP ``offset`` steps away along ``axis``) with selectable edge
behaviour.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .errors import GeometryError
from .faults import fault_point
from .field import Field, ScalarLike


def shift_array(
    data: np.ndarray,
    axis: int,
    offset: int,
    border: Union[str, ScalarLike] = 0,
) -> np.ndarray:
    """The raw NEWS shift on an ndarray: position ``c`` receives the value
    at ``c + offset`` along ``axis``, with ``border`` semantics at the edge
    (scalar fill, ``"wrap"``, or ``"clamp"``).

    Always returns a fresh writable array (``offset == 0`` is a copy) and
    charges nothing — callers account for the hops.  ``"clamp"`` reproduces
    exactly the ``np.clip``-then-gather semantics of the interpreter's
    general gather path, which is what lets the communication-tier
    dispatcher substitute a shift for a router cycle bit-identically.
    """
    if offset == 0:
        return data.copy()

    hops = abs(int(offset))
    if border == "wrap":
        return np.roll(data, -offset, axis=axis)

    # non-wrapping shift: VP at coordinate c reads coordinate c+offset
    out = np.empty_like(data)
    n = data.shape[axis]
    if hops >= n:
        if border == "clamp":
            edge_index = n - 1 if offset > 0 else 0
            out[...] = np.take(data, [edge_index], axis=axis)
        else:
            out[...] = np.asarray(border, dtype=data.dtype)
        return out

    src = [slice(None)] * data.ndim
    dst = [slice(None)] * data.ndim
    pad = [slice(None)] * data.ndim
    if offset > 0:
        src[axis] = slice(offset, None)
        dst[axis] = slice(None, n - offset)
        pad[axis] = slice(n - offset, None)
        edge = slice(n - 1, n)
    else:
        src[axis] = slice(None, n + offset)  # offset negative
        dst[axis] = slice(-offset, None)
        pad[axis] = slice(None, -offset)
        edge = slice(0, 1)
    out[tuple(dst)] = data[tuple(src)]
    if border == "clamp":
        edge_sel = [slice(None)] * data.ndim
        edge_sel[axis] = edge
        out[tuple(pad)] = data[tuple(edge_sel)]
    else:
        out[tuple(pad)] = np.asarray(border, dtype=data.dtype)
    return out


def window_array(
    data: np.ndarray,
    axis: int,
    start: int,
    extent: int,
) -> np.ndarray:
    """A clamped window copy along one axis: output position ``k`` (for
    ``k`` in ``0..extent-1``) receives ``data[clip(start + k, 0, n-1)]``.

    This is :func:`shift_array` with ``"clamp"`` generalised to windows
    whose extent differs from the axis extent — the shape an interior-grid
    stencil gather takes (grid ``{1..N-2}`` over an ``N``-element array).
    Always returns a fresh writable array and charges nothing.
    """
    n = data.shape[axis]
    k0 = min(max(0, -start), extent)          # positions clamped to index 0
    k1 = max(min(extent, n - start), k0)      # positions clamped to n - 1
    sl = [slice(None)] * data.ndim
    sl[axis] = slice(start + k0, start + k1)
    if k0 == 0 and k1 == extent:
        return data[tuple(sl)].copy()
    parts = []
    if k0 > 0:
        first = [slice(None)] * data.ndim
        first[axis] = slice(0, 1)
        parts.append(np.repeat(data[tuple(first)], k0, axis=axis))
    if k1 > k0:
        parts.append(data[tuple(sl)])
    if extent > k1:
        last = [slice(None)] * data.ndim
        last[axis] = slice(n - 1, n)
        parts.append(np.repeat(data[tuple(last)], extent - k1, axis=axis))
    return np.concatenate(parts, axis=axis)


def news_shifted(
    field: Field,
    axis: int,
    offset: int,
    *,
    border: Union[str, ScalarLike] = 0,
) -> np.ndarray:
    """Return the array of values each VP sees when it fetches from the VP
    ``offset`` positions away along ``axis`` (positive = higher coordinate).

    ``border`` controls what VPs at the edge receive: a scalar fill value,
    ``"wrap"`` for torus wraparound, or ``"clamp"`` to replicate the edge.
    The machine clock is charged ``|offset|`` NEWS hops.
    """
    vps = field.vpset
    fault_point(vps.machine, "news.shift")
    if not 0 <= axis < vps.rank:
        raise GeometryError(f"axis {axis} out of range for rank {vps.rank}")
    if offset != 0:
        vps.machine.clock.charge(
            "news", count=abs(int(offset)), vp_ratio=vps.vp_ratio
        )
    return shift_array(field.data, axis, offset, border)


def get_from_news(
    dest: Field,
    source: Field,
    axis: int,
    offset: int,
    *,
    border: Union[str, ScalarLike] = 0,
) -> None:
    """``dest := source[coord+offset]`` under ``dest``'s current context."""
    dest.same_vpset(source)
    shifted = news_shifted(source, axis, offset, border=border)
    mask = dest.vpset.context
    dest.data[mask] = shifted[mask].astype(dest.dtype)
