"""Virtual-processor sets: geometries, VP ratios and activity contexts.

On the CM-2 a program declares *VP sets* — n-dimensional grids of virtual
processors.  When a VP set is larger than the physical machine, each
physical PE time-slices ``vp_ratio`` virtual processors, which multiplies
the cost of every instruction issued to the set.  Each VP set carries an
*activity context*: a stack of boolean masks selecting which virtual
processors execute the current instruction (the hardware "context flag").
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .errors import ContextError, GeometryError

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine


def ratio_for(n_vps: int, machine: "Machine") -> int:
    """VP ratio a set of ``n_vps`` virtual processors would run at,
    without allocating (or charging for) an actual VP set.

    The frontier engine charges compressed sweeps by the *active* VP
    count; going through :meth:`Machine.vpset` would charge a spurious
    ``alloc`` per distinct active-set size.
    """
    return max(1, math.ceil(max(1, int(n_vps)) / machine.n_live_pes))


class VPSet:
    """An n-dimensional grid of virtual processors on a machine.

    Create through :meth:`repro.machine.Machine.vpset`, not directly, so
    the machine can charge allocation cost and track the set.
    """

    def __init__(self, machine: "Machine", shape: Sequence[int], name: str = "") -> None:
        shape = tuple(int(s) for s in shape)
        if not shape:
            raise GeometryError("VP set needs at least one dimension")
        if any(s <= 0 for s in shape):
            raise GeometryError(f"VP set extents must be positive: {shape}")
        self.machine = machine
        self.shape: Tuple[int, ...] = shape
        self.name = name or f"vpset{shape}"
        self.n_vps: int = int(np.prod(shape))
        self.vp_ratio: int = max(1, math.ceil(self.n_vps / machine.n_live_pes))
        self._context_stack: List[np.ndarray] = []
        self._self_addresses: Optional[np.ndarray] = None

    def recompute_ratio(self) -> bool:
        """Re-derive the VP ratio from the machine's current live-PE count
        (degraded-mode relayout after a processor fault).  Returns whether
        the ratio changed."""
        new_ratio = max(1, math.ceil(self.n_vps / self.machine.n_live_pes))
        changed = new_ratio != self.vp_ratio
        self.vp_ratio = new_ratio
        return changed

    # -- geometry ----------------------------------------------------------

    @property
    def rank(self) -> int:
        return len(self.shape)

    def axis_extent(self, axis: int) -> int:
        return self.shape[axis]

    def self_addresses(self) -> np.ndarray:
        """The ``self-address`` of every VP: its row-major linear index.

        Computed once per VP set and cached read-only — router-heavy inner
        loops (e.g. APSP) ask for it on every get/send, and the geometry
        never changes.  Callers needing a mutable copy must ``.copy()``.
        """
        if self._self_addresses is None:
            addrs = np.arange(self.n_vps, dtype=np.int64).reshape(self.shape)
            addrs.setflags(write=False)
            self._self_addresses = addrs
        return self._self_addresses

    def coordinates(self, axis: int) -> np.ndarray:
        """Per-VP coordinate along ``axis`` (Paris ``my-news-coordinate``)."""
        if not 0 <= axis < self.rank:
            raise GeometryError(f"axis {axis} out of range for rank {self.rank}")
        idx = np.indices(self.shape, dtype=np.int64)
        return idx[axis]

    # -- activity context ---------------------------------------------------

    @property
    def context(self) -> np.ndarray:
        """The current activity mask (everywhere-true if stack is empty)."""
        if self._context_stack:
            return self._context_stack[-1]
        return np.ones(self.shape, dtype=bool)

    @property
    def context_depth(self) -> int:
        return len(self._context_stack)

    def push_context(self, mask: np.ndarray, *, combine: bool = True) -> None:
        """Push an activity mask.

        With ``combine`` (the default, matching nested ``where`` semantics
        on the CM) the new context is ANDed with the enclosing one.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.shape:
            raise ContextError(
                f"context mask shape {mask.shape} != VP set shape {self.shape}"
            )
        if combine and self._context_stack:
            mask = mask & self._context_stack[-1]
        self._context_stack.append(mask)
        self.machine.clock.charge("context", vp_ratio=self.vp_ratio)

    def pop_context(self) -> np.ndarray:
        if not self._context_stack:
            raise ContextError("pop_context on empty context stack")
        self.machine.clock.charge("context", vp_ratio=self.vp_ratio)
        return self._context_stack.pop()

    def active_count(self) -> int:
        """How many VPs are active under the current context."""
        return int(np.count_nonzero(self.context))

    def everywhere(self) -> "_EverywhereCtx":
        """Context manager suspending all masking (Paris ``everywhere``)."""
        return _EverywhereCtx(self)

    def where(self, mask: np.ndarray) -> "_WhereCtx":
        """Context manager: ``with vps.where(mask): ...`` (nested AND)."""
        return _WhereCtx(self, mask)

    def __repr__(self) -> str:
        return (
            f"VPSet({self.name!r}, shape={self.shape}, "
            f"vp_ratio={self.vp_ratio}, active={self.active_count()})"
        )


class _WhereCtx:
    def __init__(self, vps: VPSet, mask: np.ndarray) -> None:
        self._vps = vps
        self._mask = mask

    def __enter__(self) -> VPSet:
        self._vps.push_context(self._mask)
        return self._vps

    def __exit__(self, *exc: object) -> None:
        self._vps.pop_context()


class _EverywhereCtx:
    def __init__(self, vps: VPSet) -> None:
        self._vps = vps
        self._saved: Optional[List[np.ndarray]] = None

    def __enter__(self) -> VPSet:
        self._saved = self._vps._context_stack
        self._vps._context_stack = []
        return self._vps

    def __exit__(self, *exc: object) -> None:
        assert self._saved is not None
        self._vps._context_stack = self._saved
