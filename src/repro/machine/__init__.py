"""A cost-accurate Connection Machine (CM-2) simulator.

This subpackage is the hardware substrate the paper's measurements ran on:
a SIMD machine of ``n_pes`` physical processors over which n-dimensional
*virtual processor sets* are time-sliced, with three communication tiers
(local memory, NEWS grid, general router), log-depth collectives
(reduce/scan/spread), a global-OR line, and a front-end workstation whose
interactions carry fixed latency.  Every operation charges a simulated
clock, so programs report CM-2-shaped elapsed times.
"""

from .config import CostTable, MachineConfig, default_config, small_config
from .cost import Clock, ClockSnapshot, CostRecord
from .errors import (
    ContextError,
    FieldError,
    GeometryError,
    LinkFault,
    MachineError,
    ProcessorFault,
    RouterError,
    ScanError,
    VPSetMismatchError,
)
from .faults import FaultEvent, FaultPlan, fault_point
from .field import Field
from .machine import Machine
from .scan import INF, identity_of
from .vpset import VPSet

from . import news, paris, router, scan

__all__ = [
    "Machine",
    "MachineConfig",
    "CostTable",
    "Clock",
    "ClockSnapshot",
    "CostRecord",
    "VPSet",
    "Field",
    "INF",
    "identity_of",
    "default_config",
    "small_config",
    "news",
    "paris",
    "router",
    "scan",
    "MachineError",
    "GeometryError",
    "VPSetMismatchError",
    "ContextError",
    "FieldError",
    "RouterError",
    "ScanError",
    "ProcessorFault",
    "LinkFault",
    "FaultPlan",
    "FaultEvent",
    "fault_point",
]
