"""The general router: arbitrary fetch/store by computed address.

Any VP may read (``get``) or write (``send``) the memory of any other VP,
at roughly an order of magnitude the cost of a NEWS hop.  Sends support
*combining*: when several VPs target the same destination, the router
hardware merges the messages with a commutative-associative operation —
this is what makes histogram/rank computations fast on the CM and it is
what the UC reduction compiles to when operands scatter.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from .errors import RouterError, VPSetMismatchError
from .faults import fault_point
from .field import Field

def _logical_combiner(
    ufunc: np.ufunc, name: str
) -> Callable[[np.ndarray, np.ndarray, np.ndarray], None]:
    """Logical combining that stays type-safe on integer fields.

    ``np.logical_*.at`` on an int destination silently merges *bool*
    results into int storage, so e.g. ``5 logor 2`` would come out as 1
    while non-colliding lanes keep their raw values — a mixed-meaning
    field.  We accept bool and integer destinations (values combined as
    truth values, stored as 0/1) and reject anything else loudly.
    """

    def combine(tgt: np.ndarray, idx: np.ndarray, val: np.ndarray) -> None:
        if tgt.dtype.kind not in "bi":
            raise RouterError(
                f"logical combiner {name!r} needs a bool or integer "
                f"destination field, got dtype {tgt.dtype}"
            )
        ufunc.at(tgt, idx, val.astype(bool))

    return combine


#: combining operations the router supports (Paris send-with-*)
COMBINERS: Dict[str, Callable[[np.ndarray, np.ndarray, np.ndarray], None]] = {
    "overwrite": lambda tgt, idx, val: tgt.__setitem__(idx, val),
    "add": lambda tgt, idx, val: np.add.at(tgt, idx, val),
    "min": lambda tgt, idx, val: np.minimum.at(tgt, idx, val),
    "max": lambda tgt, idx, val: np.maximum.at(tgt, idx, val),
    "logand": _logical_combiner(np.logical_and, "logand"),
    "logor": _logical_combiner(np.logical_or, "logor"),
    "logxor": _logical_combiner(np.logical_xor, "logxor"),
    "mul": lambda tgt, idx, val: np.multiply.at(tgt, idx, val),
}


def _check_addresses(addr: np.ndarray, n_vps: int) -> None:
    if not addr.size:
        return
    lo = addr.min()
    hi = addr.max()
    if lo < 0 or hi >= n_vps:
        raise RouterError(
            f"router address out of range [0, {n_vps}): min={lo}, max={hi}"
        )


def get(dest: Field, source: Field, address: np.ndarray) -> None:
    """``dest[vp] := source.data.flat[address[vp]]`` for active VPs.

    ``address`` holds, per destination VP, the linear self-address of the
    source VP to read.  Source and destination may live on different VP
    sets (the router spans the whole machine).  One ``router_get`` charge,
    scaled by the larger VP ratio involved.
    """
    vps = dest.vpset
    fault_point(vps.machine, "router.get")
    address = np.asarray(address, dtype=np.int64)
    if address.shape != vps.shape:
        raise RouterError(
            f"address shape {address.shape} != destination shape {vps.shape}"
        )
    mask = vps.context
    active_addr = address[mask]
    _check_addresses(active_addr, source.vpset.n_vps)
    ratio = max(vps.vp_ratio, source.vpset.vp_ratio)
    vps.machine.clock.charge("router_get", vp_ratio=ratio)
    dest.data[mask] = source.data.reshape(-1)[active_addr].astype(dest.dtype)


def send(
    dest: Field,
    source: Field,
    address: np.ndarray,
    *,
    combiner: str = "overwrite",
    rng: Optional[np.random.Generator] = None,
) -> None:
    """``dest.flat[address[vp]] OP= source[vp]`` for active source VPs.

    ``combiner`` names how colliding messages merge (see :data:`COMBINERS`);
    ``"arbitrary"`` delivers exactly one of the colliding messages, chosen
    by ``rng`` (or the machine RNG) — the semantics of UC's ``$,``.
    """
    vps = source.vpset
    fault_point(vps.machine, "router.send")
    address = np.asarray(address, dtype=np.int64)
    if address.shape != vps.shape:
        raise RouterError(
            f"address shape {address.shape} != source shape {vps.shape}"
        )
    mask = vps.context
    addr = address[mask]
    vals = source.data[mask]
    _check_addresses(addr, dest.vpset.n_vps)
    ratio = max(vps.vp_ratio, dest.vpset.vp_ratio)
    vps.machine.clock.charge("router_send", vp_ratio=ratio)

    flat = dest.data.reshape(-1)
    if combiner == "arbitrary":
        generator = rng if rng is not None else vps.machine.rng
        order = generator.permutation(len(addr))
        flat[addr[order]] = vals[order].astype(dest.dtype)
        return
    try:
        op = COMBINERS[combiner]
    except KeyError:
        raise RouterError(f"unknown combiner {combiner!r}") from None
    op(flat, addr, vals.astype(dest.dtype))


def permute(dest: Field, source: Field, address: np.ndarray) -> None:
    """Send where addresses are a permutation (layout remap).

    Identical to :func:`send` with overwrite but validates that no two
    active VPs collide, which is what a mapping remap guarantees.
    """
    vps = source.vpset
    address = np.asarray(address, dtype=np.int64)
    mask = vps.context
    addr = address[mask]
    if len(np.unique(addr)) != len(addr):
        raise RouterError("permute called with colliding addresses")
    send(dest, source, address, combiner="overwrite")
