"""Deterministic fault injection for the simulated CM-2.

A :class:`FaultPlan` is a seeded schedule of hardware failures: processor
kills, dropped or corrupted router messages, failed NEWS links.  Plans
are installed on a :class:`~repro.machine.machine.Machine` and observe
two event streams:

* **charge-stream triggers** — every :meth:`Clock.charge
  <repro.machine.cost.Clock.charge>` call reports its cost kind
  (``"alu"``, ``"router_send"``, ``"news"``, ...) through a hook the
  machine installs only when a plan is present.  Because the
  tree-walking oracle and the compiled-plan engine produce bit-identical
  charge sequences, a charge-stream trigger fires at exactly the same
  point of the computation in both engines — this is what makes fault
  runs reproducible and engine-comparable.
* **module fault points** — the Paris-level entry points in
  :mod:`~repro.machine.router`, :mod:`~repro.machine.news`,
  :mod:`~repro.machine.scan` and :mod:`~repro.machine.paris` each call
  :func:`fault_point` with a dotted name (``"router.send"``,
  ``"news.shift"``, ``"scan.reduce"``, ``"paris.alu"``...).  These fire
  for programs driving the machine API directly and use a separate
  counter namespace from the cost kinds, so one physical operation is
  never double-counted.

Every event names the operation class it watches and fires either on the
Nth matching occurrence (``at_count``) or at the first matching
occurrence at/after a simulated time (``at_us``).  Events fire **before**
the watched operation mutates machine state (the simulator charges the
clock before touching fields everywhere), so a fault leaves the machine
exactly as it was — the property checkpoint/replay recovery relies on.

Zero overhead when disabled: a machine without a plan pays one ``is not
None`` test per charge and per fault point, nothing else.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .errors import LinkFault, ProcessorFault

#: fault kinds a plan can schedule.  ``shardkill`` is the whole-shard
#: generalisation of ``kill``: on a sharded run it takes down every PE in
#: shard ``pe``'s physical range (see ``Machine.shard_ranges``, installed
#: by :class:`repro.machine.shards.ShardedMachine`); on an unsharded
#: machine it degrades to a single-PE kill.
FAULT_KINDS = ("kill", "shardkill", "drop", "corrupt", "link")

#: what each kind means when it fires
_FIRE_MESSAGES = {
    "drop": "router message dropped in transit",
    "corrupt": "router payload failed checksum",
    "link": "NEWS link failed",
}


@dataclass
class FaultEvent:
    """One scheduled failure.

    ``op`` is the operation class the event watches: a cost kind for
    charge-stream triggers (``"router_send"``, ``"alu"``, ...), a dotted
    module fault point (``"router.send"``, ``"scan.reduce"``, ...), or
    ``"*"`` to match anything.  With ``at_count > 0`` the event fires on
    the ``at_count``-th matching occurrence; otherwise it fires at the
    first matching occurrence whose clock time is >= ``at_us``.
    """

    kind: str  # 'kill' | 'drop' | 'corrupt' | 'link'
    op: str = "*"
    at_count: int = 0
    at_us: float = 0.0
    pe: int = 0  # the processor a 'kill' takes down
    fired: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at_count < 0:
            raise ValueError(f"at_count must be >= 0, got {self.at_count}")

    def describe(self) -> str:
        when = f"#{self.at_count}" if self.at_count > 0 else f"@{self.at_us:g}us"
        target = f":{self.pe}" if self.kind in ("kill", "shardkill") else ""
        return f"{self.kind}{target}@{self.op}{when}"


class FaultPlan:
    """A deterministic, seeded schedule of hardware faults.

    Parameters
    ----------
    events:
        The :class:`FaultEvent` s to fire.  Each fires at most once.
    seed:
        Seeds the plan's private RNG (reserved for randomized corruption
        payloads; kept out of the machine RNG so installing a plan never
        perturbs program-visible randomness).
    """

    def __init__(self, events: Sequence[FaultEvent] = (), *, seed: int = 0) -> None:
        self.events: List[FaultEvent] = list(events)
        self.seed = seed
        #: (time_us, kind, op) for every fault fired, for observability
        self.log: List[Tuple[float, str, str]] = []
        self._counts: Dict[str, int] = {}
        self._suspended = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def parse(cls, spec: str, *, seed: int = 0) -> "FaultPlan":
        """Build a plan from a compact spec string (the CLI's ``--faults``).

        Grammar (events separated by ``;``)::

            EVENT := KIND[':'PE] '@' OP ['#'COUNT] ['@'TIME_US]

        Examples::

            kill:3@alu#5          kill PE 3 on the 5th ALU charge
            drop@router_send#2    drop the 2nd router send
            corrupt@router_send   corrupt the first router send
            link@news@2500        fail the first NEWS op at/after t=2500us
        """
        events: List[FaultEvent] = []
        for raw in spec.split(";"):
            item = raw.strip()
            if not item:
                continue
            parts = item.split("@")
            if len(parts) not in (2, 3):
                raise ValueError(
                    f"bad fault event {item!r}: expected KIND[:PE]@OP[#N][@US]"
                )
            head, op = parts[0], parts[1]
            at_us = float(parts[2]) if len(parts) == 3 else 0.0
            kind, _, pe_text = head.partition(":")
            pe = int(pe_text) if pe_text else 0
            at_count = 0
            if "#" in op:
                op, _, count_text = op.partition("#")
                at_count = int(count_text)
            if not op:
                raise ValueError(f"bad fault event {item!r}: empty op class")
            events.append(
                FaultEvent(kind=kind, op=op, at_count=at_count, at_us=at_us, pe=pe)
            )
        return cls(events, seed=seed)

    def describe(self) -> str:
        return "; ".join(ev.describe() for ev in self.events)

    def fork(self) -> "FaultPlan":
        """A fresh, unfired copy of this plan's schedule.

        The execution service gives every job (and every service-level
        retry attempt) its own plan instance: event fired-flags and
        cumulative counters are per-run state, so sharing one plan
        object across pool jobs would let one tenant's traffic consume
        another tenant's scheduled faults.
        """
        return FaultPlan(
            [
                FaultEvent(
                    kind=ev.kind,
                    op=ev.op,
                    at_count=ev.at_count,
                    at_us=ev.at_us,
                    pe=ev.pe,
                )
                for ev in self.events
            ],
            seed=self.seed,
        )

    # -- run control ---------------------------------------------------------

    def reset(self) -> None:
        """Re-arm every event and clear counters/log (fresh run)."""
        for ev in self.events:
            ev.fired = False
        self._counts.clear()
        self.log.clear()
        self._suspended = 0

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """Mask the plan while recovery charges its own out-of-band traffic
        (backoff, relayout permutes) so a handler cannot re-fault itself."""
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    # -- triggering ----------------------------------------------------------

    def on_op(self, machine, op: str, count: int = 1) -> None:
        """Observe ``count`` occurrences of operation class ``op``.

        Called by the machine's clock hook (cost kinds) and by the Paris
        modules' fault points (dotted names).  Raises the scheduled fault
        when an event's trigger is reached.
        """
        if self._suspended:
            return
        total = self._counts.get(op, 0) + count
        self._counts[op] = total
        now = machine.clock.time_us
        for ev in self.events:
            if ev.fired or (ev.op != op and ev.op != "*"):
                continue
            if ev.at_count > 0:
                if total < ev.at_count:
                    continue
            elif now < ev.at_us:
                continue
            ev.fired = True
            self._fire(machine, ev, op)

    def _fire(self, machine, ev: FaultEvent, op: str) -> None:
        self.log.append((machine.clock.time_us, ev.kind, op))
        if ev.kind == "kill":
            machine.dead_pes.add(ev.pe)
            raise ProcessorFault(
                f"processor {ev.pe} failed during {op!r} "
                f"at t={machine.clock.time_us:.0f}us",
                pe=ev.pe,
            )
        if ev.kind == "shardkill":
            ranges = getattr(machine, "shard_ranges", None)
            if ranges and 0 <= ev.pe < len(ranges):
                lo, hi = ranges[ev.pe]
            else:
                lo, hi = ev.pe, ev.pe + 1  # unsharded machine: one PE
            machine.dead_pes.update(range(lo, hi))
            raise ProcessorFault(
                f"shard {ev.pe} (PEs {lo}..{hi - 1}) failed during {op!r} "
                f"at t={machine.clock.time_us:.0f}us",
                pe=lo,
            )
        raise LinkFault(
            f"{_FIRE_MESSAGES[ev.kind]} during {op!r} "
            f"at t={machine.clock.time_us:.0f}us",
            op=op,
        )


def fault_point(machine, op: str) -> None:
    """Module-level fault hook: one ``is not None`` test when no plan is
    installed.  ``op`` is a dotted name like ``"router.send"`` — a counter
    namespace separate from the clock's cost kinds."""
    plan = machine.faults
    if plan is not None:
        plan.on_op(machine, op)
