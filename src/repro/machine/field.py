"""Fields: per-virtual-processor memory, numpy-backed.

A :class:`Field` is one named slot in the local memory of every VP in a
VP set — the simulator analogue of a Paris field / a C* parallel variable.
All arithmetic on fields flows through :mod:`repro.machine.paris` so that
costs are charged; the raw ``data`` array is exposed for host-side reads
(which the front end could always do, at host speed).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

import numpy as np

from .errors import FieldError, VPSetMismatchError
from .vpset import VPSet

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

#: dtypes the simulated memory supports (CM fields were fixed-size ints
#: and IEEE floats; bool models the one-bit flag fields)
_SUPPORTED = (np.dtype(np.int64), np.dtype(np.float64), np.dtype(bool))

ScalarLike = Union[int, float, bool, np.integer, np.floating, np.bool_]


class Field:
    """One value of ``dtype`` in the memory of every VP of ``vpset``."""

    def __init__(self, vpset: VPSet, dtype: object = np.int64, name: str = "") -> None:
        dt = np.dtype(dtype)
        if dt not in _SUPPORTED:
            raise FieldError(
                f"unsupported field dtype {dt}; use int64, float64 or bool"
            )
        self.vpset = vpset
        self.dtype = dt
        self.name = name or f"field@{id(self):x}"
        self.data = np.zeros(vpset.shape, dtype=dt)
        vpset.machine.clock.charge("alloc", vp_ratio=vpset.vp_ratio)

    # -- shape helpers -------------------------------------------------------

    @property
    def shape(self) -> tuple:
        return self.vpset.shape

    @property
    def machine(self) -> "Machine":
        return self.vpset.machine

    def same_vpset(self, other: "Field") -> None:
        if other.vpset is not self.vpset:
            raise VPSetMismatchError(
                f"fields {self.name!r} and {other.name!r} live on different VP sets"
            )

    # -- host-side access ------------------------------------------------------

    def read(self) -> np.ndarray:
        """Host-side snapshot of the whole field (copies)."""
        return self.data.copy()

    def read_scalar(self, index: tuple) -> ScalarLike:
        """Front-end read of a single VP's value (one host<->CM round trip)."""
        self.machine.clock.charge("host_cm_latency")
        return self.data[index].item()

    def write_scalar(self, index: tuple, value: ScalarLike) -> None:
        """Front-end write of a single VP's value."""
        self.machine.clock.charge("host_cm_latency")
        self.data[index] = value

    def fill(self, value: ScalarLike) -> None:
        """Broadcast a scalar into the field under the current context."""
        mask = self.vpset.context
        self.machine.clock.charge("broadcast", vp_ratio=self.vpset.vp_ratio)
        self.data[mask] = value

    def load(self, array: np.ndarray) -> None:
        """Bulk host->CM load of the whole field (ignores context).

        Charged as one broadcast per row of the source array, modelling the
        front-end I/O bus.
        """
        array = np.asarray(array)
        if array.shape != self.vpset.shape:
            raise FieldError(
                f"load shape {array.shape} != field shape {self.vpset.shape}"
            )
        rows = int(np.prod(array.shape[:-1])) if array.ndim > 1 else 1
        self.machine.clock.charge("broadcast", count=max(1, rows))
        self.data = array.astype(self.dtype, copy=True)

    def copy_like(self, name: str = "") -> "Field":
        """Allocate a fresh field on the same VP set with the same dtype."""
        return Field(self.vpset, self.dtype, name or f"{self.name}.copy")

    def __repr__(self) -> str:
        return f"Field({self.name!r}, shape={self.shape}, dtype={self.dtype})"


# ---------------------------------------------------------------------------
# batched-lane helpers
# ---------------------------------------------------------------------------


def lane_stack(fields: "list[Field]") -> np.ndarray:
    """Stack one field per lane into an ``(S,) + shape`` array (copies).

    All fields must share shape and dtype — the batched executor only
    stacks fields of lanes running the same program on the same machine
    geometry, so a mismatch is a caller bug, not a user error.
    """
    if not fields:
        raise FieldError("lane_stack needs at least one field")
    base = fields[0]
    for f in fields[1:]:
        if f.data.shape != base.data.shape or f.dtype != base.dtype:
            raise FieldError(
                f"lane_stack mismatch: {f.name!r} {f.data.shape}/{f.dtype} "
                f"vs {base.name!r} {base.data.shape}/{base.dtype}"
            )
    return np.stack([f.data for f in fields], axis=0)


def lane_writeback(fields: "list[Field]", stacked: np.ndarray) -> None:
    """Write each lane's slice of a stacked array back into its field."""
    for i, f in enumerate(fields):
        f.data[...] = stacked[i]
