"""Paris-like instruction facade: elementwise operations on fields.

Paris was the CM-2's macro-instruction set.  This module provides the
elementwise (per-VP) slice of it: arithmetic, comparison, logical and
select operations, each executing under the destination VP set's activity
context and charging one ALU op (scaled by the VP ratio).

Operands may be fields on the same VP set, raw numpy arrays of the right
shape (pre-staged temporaries), or scalars (front-end broadcast constants;
Paris had immediate forms so no extra charge beyond the instruction).
"""

from __future__ import annotations

from typing import Callable, Dict, Union

import numpy as np

from .errors import FieldError, VPSetMismatchError
from .faults import fault_point
from .field import Field, ScalarLike

Operand = Union[Field, np.ndarray, int, float, bool]

#: binary elementwise operation table
_BINOPS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": lambda a, b: _c_div(a, b),
    "mod": lambda a, b: _c_mod(a, b),
    "min": np.minimum,
    "max": np.maximum,
    "eq": np.equal,
    "ne": np.not_equal,
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
    "logand": np.logical_and,
    "logor": np.logical_or,
    "logxor": np.logical_xor,
    "band": np.bitwise_and,
    "bor": np.bitwise_or,
    "bxor": np.bitwise_xor,
    "shl": np.left_shift,
    "shr": np.right_shift,
}

#: unary elementwise operation table
_UNOPS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "neg": np.negative,
    "lognot": np.logical_not,
    "bnot": np.invert,
    "abs": np.abs,
    "float": lambda a: a.astype(np.float64),
    "int": lambda a: _c_truncate(a),
}


def _c_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C division: truncating for integers, true for floats."""
    if np.issubdtype(np.result_type(a, b), np.integer):
        q = np.floor_divide(a, b)
        r = np.remainder(a, b)
        # C truncates toward zero; numpy floors. Correct where signs differ.
        adjust = (r != 0) & ((a < 0) != (b < 0))
        return q + adjust
    return np.true_divide(a, b)


def _c_mod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C remainder: sign follows the dividend."""
    r = np.remainder(a, b)
    adjust = (r != 0) & ((a < 0) != (b < 0))
    return r - adjust * b


def _c_truncate(a: np.ndarray) -> np.ndarray:
    return np.trunc(a).astype(np.int64)


def operand_array(x: Operand, vpset) -> np.ndarray:
    """Resolve an operand to a numpy array shaped like ``vpset``."""
    if isinstance(x, Field):
        if x.vpset is not vpset:
            raise VPSetMismatchError(
                f"operand field {x.name!r} is not on VP set {vpset.name!r}"
            )
        return x.data
    if isinstance(x, np.ndarray):
        if x.shape != vpset.shape:
            raise FieldError(
                f"operand array shape {x.shape} != VP set shape {vpset.shape}"
            )
        return x
    return np.broadcast_to(np.asarray(x), vpset.shape)


def binop(dest: Field, op: str, a: Operand, b: Operand) -> None:
    """``dest := a OP b`` under the current context (one ALU charge)."""
    vps = dest.vpset
    fault_point(vps.machine, "paris.alu")
    try:
        fn = _BINOPS[op]
    except KeyError:
        raise FieldError(f"unknown binary op {op!r}") from None
    av = operand_array(a, vps)
    bv = operand_array(b, vps)
    vps.machine.clock.charge("alu", vp_ratio=vps.vp_ratio)
    mask = vps.context
    result = fn(av, bv)
    dest.data[mask] = result[mask].astype(dest.dtype)


def unop(dest: Field, op: str, a: Operand) -> None:
    """``dest := OP a`` under the current context (one ALU charge)."""
    vps = dest.vpset
    fault_point(vps.machine, "paris.alu")
    try:
        fn = _UNOPS[op]
    except KeyError:
        raise FieldError(f"unknown unary op {op!r}") from None
    av = operand_array(a, vps)
    vps.machine.clock.charge("alu", vp_ratio=vps.vp_ratio)
    mask = vps.context
    dest.data[mask] = fn(av)[mask].astype(dest.dtype)


def move(dest: Field, src: Operand) -> None:
    """``dest := src`` under the current context (one ALU charge)."""
    vps = dest.vpset
    fault_point(vps.machine, "paris.alu")
    av = operand_array(src, vps)
    vps.machine.clock.charge("alu", vp_ratio=vps.vp_ratio)
    mask = vps.context
    dest.data[mask] = av[mask].astype(dest.dtype)


def select(dest: Field, cond: Operand, a: Operand, b: Operand) -> None:
    """``dest := cond ? a : b`` under the current context."""
    vps = dest.vpset
    fault_point(vps.machine, "paris.alu")
    cv = operand_array(cond, vps).astype(bool)
    av = operand_array(a, vps)
    bv = operand_array(b, vps)
    vps.machine.clock.charge("alu", count=2, vp_ratio=vps.vp_ratio)
    mask = vps.context
    dest.data[mask] = np.where(cv, av, bv)[mask].astype(dest.dtype)


def global_or(vpset, flag: Operand) -> bool:
    """Sample the wired global-OR line: is ``flag`` true on any active VP?

    This is how the front end decides whether another ``*par`` iteration
    is needed — a single fast hardware line, not a full reduction.
    """
    fault_point(vpset.machine, "paris.global_or")
    fv = operand_array(flag, vpset).astype(bool)
    vpset.machine.clock.charge("global_or", vp_ratio=vpset.vp_ratio)
    return bool(np.any(fv & vpset.context))
