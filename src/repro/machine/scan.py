"""Scan, reduce, spread and enumerate: the CM's log-depth collectives.

These are the primitives behind UC reductions and prefix computations.
A reduction over *n* active processors completes in ⌈log₂ n⌉ tree steps;
scans (parallel prefix) and spreads (broadcast along an axis) have the
same depth.  Identity values follow the paper's table in §3.2 — an empty
operand set yields the identity of the operator.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from .errors import ScanError
from .faults import fault_point
from .field import Field, ScalarLike

#: a practical stand-in for the paper's INF constant
INF = float(2**53)

#: a spread is a reduce-then-broadcast along the same tree, so every level
#: of the log-depth tree is traversed twice (down with the operator, up
#: with the copy) — shared with the interpreter's spread-tier charging
SPREAD_STEPS_PER_LEVEL = 2

#: reduction operator table: name -> (numpy ufunc-ish reducer, identity)
_REDUCERS: Dict[str, Tuple[Callable[[np.ndarray], ScalarLike], ScalarLike]] = {
    "add": (lambda v: v.sum(), 0),
    "mul": (lambda v: v.prod(), 1),
    "max": (lambda v: v.max(), -INF),
    "min": (lambda v: v.min(), INF),
    "logand": (lambda v: bool(np.logical_and.reduce(v)), True),
    "logor": (lambda v: bool(np.logical_or.reduce(v)), False),
    "logxor": (lambda v: bool(np.logical_xor.reduce(v)), False),
}

#: scan (prefix) accumulators: name -> numpy ufunc
_SCANNERS: Dict[str, np.ufunc] = {
    "add": np.add,
    "mul": np.multiply,
    "max": np.maximum,
    "min": np.minimum,
    "logand": np.logical_and,
    "logor": np.logical_or,
    "logxor": np.logical_xor,
}


def identity_of(op: str) -> ScalarLike:
    """The identity value returned for an empty reduction (paper §3.2)."""
    if op == "arbitrary":
        return INF
    try:
        return _REDUCERS[op][1]
    except KeyError:
        raise ScanError(f"unknown reduction op {op!r}") from None


def reduce(
    field: Field,
    op: str,
    *,
    rng: Optional[np.random.Generator] = None,
) -> ScalarLike:
    """Reduce the active values of ``field`` with ``op`` to one scalar.

    Returns the operator identity if no VP is active.  ``"arbitrary"``
    returns one active value chosen by ``rng`` (default: machine RNG).
    Charged as one log-depth tree plus the host read of the result.
    """
    vps = field.vpset
    fault_point(vps.machine, "scan.reduce")
    mask = vps.context
    vals = field.data[mask]
    vps.machine.clock.charge_scan(vps.n_vps, vp_ratio=vps.vp_ratio)
    vps.machine.clock.charge("host_cm_latency")
    if vals.size == 0:
        return identity_of(op)
    if op == "arbitrary":
        generator = rng if rng is not None else vps.machine.rng
        return vals[int(generator.integers(0, vals.size))].item()
    try:
        reducer, _ = _REDUCERS[op]
    except KeyError:
        raise ScanError(f"unknown reduction op {op!r}") from None
    out = reducer(vals)
    return out.item() if isinstance(out, np.generic) else out


def scan(
    dest: Field,
    source: Field,
    op: str,
    *,
    axis: int = -1,
    inclusive: bool = True,
    segment_mask: Optional[np.ndarray] = None,
) -> None:
    """Parallel prefix of ``source`` along ``axis`` into ``dest``.

    Inactive positions pass their accumulated value through unchanged (the
    Paris scan semantics with the context as the scan mask).  With
    ``segment_mask`` set, positions where it is True start a new segment.
    """
    dest.same_vpset(source)
    vps = source.vpset
    fault_point(vps.machine, "scan.scan")
    if op not in _SCANNERS:
        raise ScanError(f"unknown scan op {op!r}")
    ufunc = _SCANNERS[op]
    ax = axis % vps.rank
    vps.machine.clock.charge_scan(vps.shape[ax], vp_ratio=vps.vp_ratio)

    mask = vps.context
    ident = identity_of(op)
    vals = np.where(mask, source.data, np.asarray(ident, dtype=source.data.dtype))

    if segment_mask is None:
        acc = ufunc.accumulate(vals, axis=ax)
        if not inclusive:
            acc = _exclusive_shift(acc, vals, ident, ax)
    else:
        acc = _segmented_accumulate(vals, np.asarray(segment_mask, bool), ufunc, ident, ax)
        if not inclusive:
            acc = _exclusive_shift(acc, vals, ident, ax)
    dest.data[mask] = acc[mask].astype(dest.dtype)


def _exclusive_shift(acc: np.ndarray, vals: np.ndarray, ident: ScalarLike, ax: int) -> np.ndarray:
    out = np.empty_like(acc)
    lead = [slice(None)] * acc.ndim
    rest_src = [slice(None)] * acc.ndim
    rest_dst = [slice(None)] * acc.ndim
    lead[ax] = slice(0, 1)
    rest_src[ax] = slice(None, -1)
    rest_dst[ax] = slice(1, None)
    out[tuple(lead)] = np.asarray(ident, dtype=acc.dtype)
    out[tuple(rest_dst)] = acc[tuple(rest_src)]
    return out


def _segmented_accumulate(
    vals: np.ndarray, segs: np.ndarray, ufunc: np.ufunc, ident: ScalarLike, ax: int
) -> np.ndarray:
    if segs.shape != vals.shape:
        raise ScanError("segment mask shape mismatch")
    moved = np.moveaxis(vals, ax, -1)
    msegs = np.moveaxis(segs, ax, -1)
    out = np.empty_like(moved)
    flat_v = moved.reshape(-1, moved.shape[-1])
    flat_s = msegs.reshape(-1, moved.shape[-1])
    flat_o = out.reshape(-1, moved.shape[-1])
    for row in range(flat_v.shape[0]):
        acc = np.asarray(ident, dtype=vals.dtype)
        for col in range(flat_v.shape[1]):
            if flat_s[row, col]:
                acc = np.asarray(ident, dtype=vals.dtype)
            acc = ufunc(acc, flat_v[row, col])
            flat_o[row, col] = acc
    return np.moveaxis(out, -1, ax)


def spread(dest: Field, source: Field, op: str, *, axis: int) -> None:
    """Reduce ``source`` along ``axis`` with ``op`` and broadcast the result
    back along that axis (Paris ``spread-with-op``).

    This is the primitive behind UC reductions evaluated *per element of
    the remaining axes* — e.g. the matrix-multiply dot products.
    """
    dest.same_vpset(source)
    vps = source.vpset
    fault_point(vps.machine, "scan.spread")
    if op not in _SCANNERS:
        raise ScanError(f"unknown spread op {op!r}")
    ufunc = _SCANNERS[op]
    ax = axis % vps.rank
    vps.machine.clock.charge_scan(
        vps.shape[ax], vp_ratio=vps.vp_ratio, steps_per_level=SPREAD_STEPS_PER_LEVEL
    )

    mask = vps.context
    ident = identity_of(op)
    vals = np.where(mask, source.data, np.asarray(ident, dtype=source.data.dtype))
    red = ufunc.reduce(vals, axis=ax, keepdims=True)
    out = np.broadcast_to(red, vps.shape)
    dest.data[mask] = out[mask].astype(dest.dtype)


def enumerate_active(field: Field) -> None:
    """Write into ``field`` the rank (0-based) of each active VP among the
    active VPs, in row-major order (Paris ``enumerate``).

    Used for packing and for processor allocation in the compiler.
    """
    vps = field.vpset
    fault_point(vps.machine, "scan.enumerate")
    mask = vps.context
    vps.machine.clock.charge_scan(vps.n_vps, vp_ratio=vps.vp_ratio)
    flat_mask = mask.reshape(-1)
    ranks = np.cumsum(flat_mask) - 1
    field.data.reshape(-1)[flat_mask] = ranks[flat_mask].astype(field.dtype)


def global_count(vpset) -> int:
    """Number of active VPs, as the front end would obtain it (one reduce)."""
    vpset.machine.clock.charge_scan(vpset.n_vps, vp_ratio=vpset.vp_ratio)
    vpset.machine.clock.charge("host_cm_latency")
    return vpset.active_count()
