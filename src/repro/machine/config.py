"""Machine configuration: physical size and the cost table.

The cost table is the heart of the reproduction.  The paper's measured
curves (figures 6-8) are shaped by the *relative* costs of the CM-2's
operation classes, not by absolute microseconds:

* local ALU operations are cheap and scale with the VP ratio,
* NEWS-grid neighbour communication is a small constant factor above ALU,
* general router traffic is an order of magnitude above NEWS,
* global reductions/scans take time logarithmic in the number of
  processors,
* every front-end (host) interaction pays a fixed latency, which is why
  iterating a loop from the host has a per-iteration floor.

The default numbers below are loosely calibrated to published CM-2 Paris
timings (unit: microseconds for a 16K machine at VP ratio 1) and, more
importantly, keep those ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from .errors import GeometryError


@dataclass(frozen=True)
class CostTable:
    """Per-operation-class base costs, in simulated microseconds.

    Each cost is the charge for one Paris instruction executed at VP
    ratio 1; instruction charges scale linearly with the VP ratio
    (virtual processors are time-sliced over physical ones) except host
    operations, which happen on the front end.

    The CM-2 is a host-driven SIMD machine: every Paris instruction is
    dispatched by the front-end workstation through its bus and runtime
    library, which in practice dominated short instructions.  That fixed
    per-instruction ``dispatch`` overhead is charged once per issued
    instruction (not scaled by VP ratio) and is what keeps small parallel
    programs from being absurdly fast — exactly the effect visible in the
    paper's near-flat-but-nonzero UC curve of figure 8.

    Calibration targets (16K CM-2 with a Sun-4 front end, early-1990
    compilers): figure 8's sequential-C-to-UC ratio of roughly 10× at
    120 rows, and the mapping technical report's "up to a factor of 10"
    for router-bound references turned local.
    """

    #: one elementwise ALU op (add, compare, select...) across a VP set
    alu: float = 20.0
    #: loading / saving / combining an activity context flag
    context: float = 10.0
    #: one distance-1 NEWS grid shift
    news: float = 100.0
    #: one general-router get (remote fetch by computed address)
    router_get: float = 2500.0
    #: one general-router send (remote store, with combining)
    router_send: float = 2000.0
    #: one precomputed-permutation cycle: router traffic whose pattern is a
    #: known bijection (e.g. a transpose under a ``permute`` map), so the
    #: message schedule is compiled once and replayed congestion-free —
    #: cheaper than a general get but dearer than NEWS
    router_permute: float = 1200.0
    #: one element crossing the inter-machine link between two shards of a
    #: partitioned machine: gathered into a per-destination slab, shipped in
    #: one bulk exchange per shard pair per sweep, scattered locally on the
    #: receiving shard.  Dearer than any intra-machine router cycle — the
    #: link leaves the backplane
    intershard: float = 4000.0
    #: broadcast of one scalar from the front end to all processors
    broadcast: float = 150.0
    #: one step of a log-depth reduction / scan tree
    scan_step: float = 50.0
    #: global-OR wired-or line sampled by the front end
    global_or: float = 100.0
    #: one scalar operation on the front-end workstation
    host: float = 0.35
    #: fixed latency of any host <-> CM interaction (loop turnaround)
    host_cm_latency: float = 1000.0
    #: per-field allocation overhead (store management)
    alloc: float = 50.0
    #: front-end dispatch overhead charged once per issued instruction
    dispatch: float = 150.0
    #: one cycle of fault-recovery backoff: the front end waiting out a
    #: retry window after a detected hardware fault (host-side — the CM
    #: proper is idle while the front end decides how to proceed)
    recovery: float = 100.0

    def scaled(self, factor: float) -> "CostTable":
        """Return a copy with every CM-side cost multiplied by ``factor``.

        Used to model slower/faster machine generations; host costs are
        left untouched (the front end is a separate computer).
        """
        return CostTable(
            alu=self.alu * factor,
            context=self.context * factor,
            news=self.news * factor,
            router_get=self.router_get * factor,
            router_send=self.router_send * factor,
            router_permute=self.router_permute * factor,
            intershard=self.intershard * factor,
            broadcast=self.broadcast * factor,
            scan_step=self.scan_step * factor,
            global_or=self.global_or * factor,
            host=self.host,
            host_cm_latency=self.host_cm_latency,
            alloc=self.alloc * factor,
            dispatch=self.dispatch * factor,
            recovery=self.recovery,
        )


#: cost classes a charge may be filed under (used by counters and tests)
COST_KINDS = (
    "alu",
    "context",
    "news",
    "router_get",
    "router_send",
    "router_permute",
    "intershard",
    "broadcast",
    "scan_step",
    "global_or",
    "host",
    "host_cm_latency",
    "alloc",
    "dispatch",
    "recovery",
)

#: kinds executed by the front end: no VP-ratio scaling, no dispatch charge
HOST_KINDS = frozenset({"host", "host_cm_latency", "recovery"})


@dataclass(frozen=True)
class MachineConfig:
    """Static description of a simulated Connection Machine.

    Parameters
    ----------
    n_pes:
        Number of physical processing elements.  The paper's machine was a
        16K CM-2, which is the default.
    costs:
        The :class:`CostTable` in effect.
    name:
        Human-readable label used in reports.
    """

    n_pes: int = 16384
    costs: CostTable = field(default_factory=CostTable)
    name: str = "CM-2/16K (simulated)"

    def __post_init__(self) -> None:
        if self.n_pes <= 0:
            raise GeometryError(f"n_pes must be positive, got {self.n_pes}")

    def with_costs(self, **overrides: float) -> "MachineConfig":
        """Return a config whose cost table has ``overrides`` applied."""
        return replace(self, costs=replace(self.costs, **overrides))


def default_config() -> MachineConfig:
    """The configuration used throughout the paper's experiments."""
    return MachineConfig()


def small_config(n_pes: int = 1024) -> MachineConfig:
    """A small machine, handy for tests that exercise VP ratios > 1."""
    return MachineConfig(n_pes=n_pes, name=f"CM (simulated, {n_pes} PEs)")
