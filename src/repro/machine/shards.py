"""Sharded execution: K resident CM-2 shards behind one global machine.

The real CM-2 was a partitionable machine — up to four front-end buses
could each drive a section of the backplane.  :class:`ShardedMachine`
scales the simulator the same way: the program still executes on one
*base* :class:`~repro.machine.machine.Machine` (so results and the
global Clock fingerprint are bit-identical for every shard count), while
``K`` resident shard Machines account where the work and the traffic
would physically land under a :class:`~repro.mapping.placement.Placement`.

The wiring is one hook: the sharded machine installs itself as the base
clock's ``shard_sink``, and every remote reference the tier dispatcher
charges — identically in the tree-walking oracle, the compiled-plan
engine, the frontier engine and the fusion backend — arrives here via
``observe_ref``.  The placement splits the reference into intra-shard
work (charged on the owning shard's clock at that shard's own VP ratio)
and cross-shard slabs (per ordered shard pair, charged as ``intershard``
cycles on the sending shard).  Nothing is ever charged on the base
clock, which is what keeps ``fingerprint()`` shard-count independent by
construction; the base clock only gets an ``intershard`` tier *count*
(observability, excluded from the fingerprint like every tier count).

Whole-shard faults: when a fault plan kills every PE of one shard's
range (``shardkill`` in :mod:`repro.machine.faults`), the sink notices
the base machine's grown ``dead_pes`` set and retires the shard — the
survivors absorb its bands and subsequent splits route around it.

Accounting model: slab exchanges are bulk, once per shard pair per
sweep, sized by the *unique* source elements of the reference — also
for frontier-compressed sweeps (a halo exchange ships the slab whether
or not every lane is active).  Cross-shard reductions arrive through
``observe_reduce`` carrying their site's UC5xx determinism verdict
(:mod:`repro.analysis.determinism`): only a **UC501-proven** site —
commutative *and* associative, per the MapReduce-commutativity result,
arxiv 1605.01497 — may pre-combine its partials locally so that just
K-1 partials per output ride the global scan tree.  Unproven sites
(float ``$+``/``$*`` under UC502, unprovable bodies under UC503) are
demoted to the ordered path: every non-owning shard ships its raw band
through the intershard tier to the first live shard, which runs the
full order-preserving combine.  The demotion is pure accounting — the
base machine computes the value either way, bit-identically.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..mapping.placement import Placement
from .machine import Machine
from .vpset import ratio_for

__all__ = ["ShardedMachine"]

#: element width of one slab entry on the inter-shard link, in bytes
SLAB_ELEM_BYTES = 8


class ShardedMachine:
    """K resident shard Machines rolled up behind one base machine."""

    def __init__(self, base: Machine, n_shards: int, placement: Placement) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if placement.n_shards != n_shards:
            raise ValueError("placement was derived for a different shard count")
        self.base = base
        self.n_shards = int(n_shards)
        self.placement = placement
        per = max(1, base.config.n_pes // n_shards)
        self.pes_per_shard = per
        self.shards: List[Machine] = [
            Machine(
                replace(
                    base.config,
                    n_pes=per,
                    name=f"{base.config.name} shard {s}/{n_shards}",
                ),
                seed=base._seed,
            )
            for s in range(n_shards)
        ]
        #: cross-shard slab ledger: (src, dst) -> unique elements shipped
        self.pair_elems: Dict[Tuple[int, int], int] = {}
        self.intershard_elems = 0
        self.intra_elems = 0
        self.refs_observed = 0
        self.cross_refs = 0
        #: reductions whose UC501 proof allowed local pre-combining
        self.reductions_precombined = 0
        #: reductions demoted to the ordered intershard path (UC502/UC503)
        self.reductions_ordered = 0
        self._dst_counts_memo: Dict[Tuple, Tuple[int, ...]] = {}
        self._dead_seen = -1
        base.clock.shard_sink = self
        # whole-shard fault plumbing: faults.py resolves `shardkill:<s>`
        # to this range table on the base machine
        base.shard_ranges = self.shard_ranges()

    # -- geometry -----------------------------------------------------------

    def shard_ranges(self) -> List[Tuple[int, int]]:
        """Physical PE range [lo, hi) backing each shard of the base."""
        per = self.pes_per_shard
        return [(s * per, min((s + 1) * per, self.base.config.n_pes))
                for s in range(self.n_shards)]

    def _refresh_live(self) -> None:
        """Retire shards whose entire PE range the fault plan killed."""
        n_dead = len(self.base.dead_pes)
        if n_dead == self._dead_seen:
            return
        self._dead_seen = n_dead
        if not n_dead:
            return
        dead = self.base.dead_pes
        for s, (lo, hi) in enumerate(self.shard_ranges()):
            if s not in self.placement.live:
                continue
            if len(self.placement.live) > 1 and all(p in dead for p in range(lo, hi)):
                self.placement.retire(s)

    # -- the sink -----------------------------------------------------------

    def observe_ref(self, tier, rc, layout, grid_shape, write) -> None:
        """Account one remote-reference tier charge across the shards.

        Called (indirectly) by ``commtiers.charge_tier_at`` on the base
        clock — and by charge-table replay in the fusion/batch engines —
        for every reference of every engine.  Never touches the base
        clock's charge stream.
        """
        from ..interp import commtiers  # lazy: commtiers imports machine

        self._refresh_live()
        self.refs_observed += 1
        grid_shape = tuple(grid_shape)
        if tier in ("local", "broadcast"):
            # perfectly distributed (local) or front-end fed (broadcast):
            # each live shard runs its band at its own VP ratio
            for s, c in self._band_sizes(grid_shape):
                commtiers.charge_tier_at(
                    self.shards[s].clock, tier, rc, write=write,
                    vp_ratio=ratio_for(c, self.shards[s]),
                )
            return
        split = self.placement.split(rc, layout, grid_shape, write)
        for s, c in zip(self.placement.live, split.dst_counts):
            if c <= 0:
                continue
            commtiers.charge_tier_at(
                self.shards[s].clock, tier, rc, write=write,
                vp_ratio=ratio_for(c, self.shards[s]),
            )
        if split.cross:
            self.cross_refs += 1
            for (a, b), c in split.pairs:
                self.shards[a].clock.charge("intershard", count=c)
                self.pair_elems[(a, b)] = self.pair_elems.get((a, b), 0) + c
            self.intershard_elems += split.cross
            # observability on the global clock: tier counts are excluded
            # from the fingerprint, so this is shard-count safe
            self.base.clock.count_tier("intershard")
        self.intra_elems += split.intra

    def observe_reduce(self, op, order_safe, n_vps, vp_ratio, grid_shape) -> None:
        """Account one reduction across the shards, gated on its verdict.

        ``order_safe`` is the site's UC5xx legality bit (True only for
        UC501-proven commutative+associative sites).  Proven sites
        pre-combine: each live shard runs a log-depth scan over its own
        band and only K-1 partials per output ride the global tree.
        Unproven sites take the ordered path: every non-owning shard
        ships its raw band through the intershard tier (same ledger as
        slab exchanges: pair elems, per-shard clocks, global counter all
        agree) and the first live shard runs the full combine in written
        operand order.  Never touches the base clock's charge stream.
        """
        self._refresh_live()
        grid_shape = tuple(grid_shape)
        bands = self._band_sizes(grid_shape)
        if order_safe:
            self.reductions_precombined += 1
            for s, c in bands:
                self.shards[s].clock.charge_scan(
                    c, vp_ratio=ratio_for(c, self.shards[s])
                )
            return
        self.reductions_ordered += 1
        owner = bands[0][0] if bands else next(iter(self.placement.live))
        total = 0
        shipped = 0
        for s, c in bands:
            total += c
            if s == owner:
                continue
            self.shards[s].clock.charge("intershard", count=c)
            self.pair_elems[(s, owner)] = self.pair_elems.get((s, owner), 0) + c
            shipped += c
        self.shards[owner].clock.charge_scan(
            max(1, total), vp_ratio=ratio_for(total, self.shards[owner])
        )
        if shipped:
            self.intershard_elems += shipped
            # observability on the global clock: tier counts are excluded
            # from the fingerprint, so this is shard-count safe
            self.base.clock.count_tier("intershard")

    def _band_sizes(self, grid_shape):
        key = (grid_shape, self.placement.live)
        hit = self._dst_counts_memo.get(key)
        if hit is None:
            hit = self._dst_counts_memo[key] = self.placement._dst_counts(grid_shape)
        return [
            (s, c) for s, c in zip(self.placement.live, hit) if c > 0
        ]

    # -- reporting ----------------------------------------------------------

    def intershard_bytes(self) -> int:
        return self.intershard_elems * SLAB_ELEM_BYTES

    def stats(self) -> dict:
        """The ``--stats`` shard section: per-shard Clock totals,
        intershard cycles, and bytes exchanged per shard pair."""
        return {
            "n_shards": self.n_shards,
            "policy": self.placement.policy,
            "axis": self.placement.axis,
            "live": list(self.placement.live),
            "refs": self.refs_observed,
            "cross_refs": self.cross_refs,
            "intra_elems": self.intra_elems,
            "reductions_precombined": self.reductions_precombined,
            "reductions_ordered": self.reductions_ordered,
            "intershard_cycles": self.intershard_elems,
            "intershard_bytes": self.intershard_bytes(),
            "pairs": {
                f"{a}->{b}": {
                    "elems": c,
                    "bytes": c * SLAB_ELEM_BYTES,
                }
                for (a, b), c in sorted(self.pair_elems.items())
            },
            "per_shard": [
                {
                    "shard": s,
                    "live": s in self.placement.live,
                    "time_us": m.clock.time_us,
                    "intershard_cycles": m.clock.count("intershard"),
                }
                for s, m in enumerate(self.shards)
            ],
        }

    # -- checkpoint/restore (rides the base clock's dump_state) -------------

    def dump_state(self) -> dict:
        return {
            "clocks": [m.clock.dump_state() for m in self.shards],
            "pair_elems": dict(self.pair_elems),
            "intershard_elems": self.intershard_elems,
            "intra_elems": self.intra_elems,
            "refs_observed": self.refs_observed,
            "cross_refs": self.cross_refs,
            "reductions_precombined": self.reductions_precombined,
            "reductions_ordered": self.reductions_ordered,
        }

    def load_state(self, state: dict) -> None:
        for m, st in zip(self.shards, state["clocks"]):
            m.clock.load_state(st)
        self.pair_elems = dict(state["pair_elems"])
        self.intershard_elems = state["intershard_elems"]
        self.intra_elems = state["intra_elems"]
        self.refs_observed = state["refs_observed"]
        self.cross_refs = state["cross_refs"]
        self.reductions_precombined = state.get("reductions_precombined", 0)
        self.reductions_ordered = state.get("reductions_ordered", 0)

    def reset(self) -> None:
        """Zero all shard accounting (rides the base clock's reset)."""
        for m in self.shards:
            m.clock.reset()
        self.pair_elems.clear()
        self.intershard_elems = 0
        self.intra_elems = 0
        self.refs_observed = 0
        self.cross_refs = 0
        self.reductions_precombined = 0
        self.reductions_ordered = 0
        self._dead_seen = -1
        if not self.base.dead_pes:
            self.placement.restore_all()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedMachine(K={self.n_shards}, placement={self.placement!r}, "
            f"intershard={self.intershard_elems})"
        )
