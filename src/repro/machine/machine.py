"""The simulated Connection Machine: top-level object tying it together.

A :class:`Machine` owns a configuration, a cost :class:`Clock`, a seeded
RNG (for the router's arbitrary-combining and UC's ``oneof``), and the VP
sets / fields allocated on it.  All the Paris-layer modules (``paris``,
``news``, ``router``, ``scan``) operate on the fields of one machine and
charge its clock.

Example
-------
>>> from repro.machine import Machine
>>> cm = Machine()
>>> vps = cm.vpset((32, 32), name="grid")
>>> a = cm.field(vps, name="a")
>>> from repro.machine import paris
>>> paris.move(a, vps.coordinates(0))
>>> cm.clock.time_us > 0
True
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .config import MachineConfig, default_config
from .cost import Clock
from .field import Field
from .vpset import VPSet


class Machine:
    """A simulated CM-2: physical configuration + clock + allocations."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        *,
        seed: int = 0x5CA1AB1E,
    ) -> None:
        self.config = config or default_config()
        self.clock = Clock(self.config.costs)
        self.rng = np.random.default_rng(seed)
        self._seed = seed
        self.vpsets: List[VPSet] = []
        self.fields: List[Field] = []

    # -- allocation ---------------------------------------------------------

    def vpset(self, shape: Sequence[int], name: str = "") -> VPSet:
        """Allocate a VP set with the given geometry."""
        vps = VPSet(self, shape, name)
        self.vpsets.append(vps)
        return vps

    def field(self, vpset: VPSet, dtype: object = np.int64, name: str = "") -> Field:
        """Allocate a field on ``vpset``."""
        if vpset.machine is not self:
            raise ValueError("VP set belongs to another machine")
        f = Field(vpset, dtype, name)
        self.fields.append(f)
        return f

    # -- run control ---------------------------------------------------------

    def cold_boot(self) -> None:
        """Reset the clock, the RNG and drop all allocations."""
        self.clock.reset()
        self.rng = np.random.default_rng(self._seed)
        self.vpsets.clear()
        self.fields.clear()

    @property
    def elapsed_us(self) -> float:
        return self.clock.time_us

    @property
    def elapsed_ms(self) -> float:
        return self.clock.time_ms

    def __repr__(self) -> str:
        return (
            f"Machine({self.config.name!r}, n_pes={self.config.n_pes}, "
            f"t={self.clock.time_us:.1f}us)"
        )
