"""The simulated Connection Machine: top-level object tying it together.

A :class:`Machine` owns a configuration, a cost :class:`Clock`, a seeded
RNG (for the router's arbitrary-combining and UC's ``oneof``), and the VP
sets / fields allocated on it.  All the Paris-layer modules (``paris``,
``news``, ``router``, ``scan``) operate on the fields of one machine and
charge its clock.

Example
-------
>>> from repro.machine import Machine
>>> cm = Machine()
>>> vps = cm.vpset((32, 32), name="grid")
>>> a = cm.field(vps, name="a")
>>> from repro.machine import paris
>>> paris.move(a, vps.coordinates(0))
>>> cm.clock.time_us > 0
True
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from .config import MachineConfig, default_config
from .cost import Clock
from .errors import GeometryError
from .faults import FaultPlan
from .field import Field
from .vpset import VPSet


class Machine:
    """A simulated CM-2: physical configuration + clock + allocations."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        *,
        seed: int = 0x5CA1AB1E,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.config = config or default_config()
        self.clock = Clock(self.config.costs)
        self.rng = np.random.default_rng(seed)
        self._seed = seed
        self.vpsets: List[VPSet] = []
        self.fields: List[Field] = []
        #: physical PEs taken down by injected faults; survives checkpoint
        #: restore (hardware health is not program state)
        self.dead_pes: Set[int] = set()
        self.faults: Optional[FaultPlan] = None
        if faults is not None:
            self.install_faults(faults)

    # -- fault injection ----------------------------------------------------

    def install_faults(self, plan: FaultPlan) -> None:
        """Arm a :class:`FaultPlan`: reset its counters and hook it into
        the clock's charge stream.  Replaces any previous plan."""
        plan.reset()
        self.faults = plan
        self.clock.fault_hook = lambda kind, count: plan.on_op(self, kind, count)

    def remove_faults(self) -> None:
        """Disarm fault injection (the zero-overhead state)."""
        self.faults = None
        self.clock.fault_hook = None

    @property
    def n_live_pes(self) -> int:
        """Physical PEs still in service (total minus the dead list)."""
        live = self.config.n_pes - len(self.dead_pes)
        if live <= 0:
            raise GeometryError("every physical processor has failed")
        return live

    # -- allocation ---------------------------------------------------------

    def vpset(self, shape: Sequence[int], name: str = "") -> VPSet:
        """Allocate a VP set with the given geometry."""
        vps = VPSet(self, shape, name)
        self.vpsets.append(vps)
        return vps

    def field(self, vpset: VPSet, dtype: object = np.int64, name: str = "") -> Field:
        """Allocate a field on ``vpset``."""
        if vpset.machine is not self:
            raise ValueError("VP set belongs to another machine")
        f = Field(vpset, dtype, name)
        self.fields.append(f)
        return f

    # -- run control ---------------------------------------------------------

    def cold_boot(self) -> None:
        """Reset the clock, the RNG and drop all allocations.  Dead PEs
        come back (a cold boot is a service visit) and any fault plan is
        re-armed from the start."""
        self.clock.reset()
        self.rng = np.random.default_rng(self._seed)
        self.vpsets.clear()
        self.fields.clear()
        self.dead_pes.clear()
        if self.faults is not None:
            self.faults.reset()

    @property
    def elapsed_us(self) -> float:
        return self.clock.time_us

    @property
    def elapsed_ms(self) -> float:
        return self.clock.time_ms

    def __repr__(self) -> str:
        return (
            f"Machine({self.config.name!r}, n_pes={self.config.n_pes}, "
            f"t={self.clock.time_us:.1f}us)"
        )
