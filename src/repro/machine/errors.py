"""Machine-level exceptions for the Connection Machine simulator.

The simulator is deliberately strict: shape mismatches, cross-VP-set
operations and out-of-range router addresses raise immediately instead of
silently broadcasting, because on the real CM-2 these were hard Paris
errors (or worse, silent corruption).
"""

from __future__ import annotations


class MachineError(Exception):
    """Base class for all simulator errors."""


class GeometryError(MachineError):
    """A VP-set geometry is invalid (empty shape, non-positive extent...)."""


class VPSetMismatchError(MachineError):
    """An operation mixed fields that live on different VP sets."""


class ContextError(MachineError):
    """Context stack misuse (pop on empty stack, wrong-shape mask...)."""


class FieldError(MachineError):
    """Illegal field operation (dtype mismatch, wrong shape...)."""


class RouterError(MachineError):
    """Router address out of range or malformed send/get."""


class ScanError(MachineError):
    """Invalid scan/reduce request (unknown op, bad axis...)."""
