"""Machine-level exceptions for the Connection Machine simulator.

The simulator is deliberately strict: shape mismatches, cross-VP-set
operations and out-of-range router addresses raise immediately instead of
silently broadcasting, because on the real CM-2 these were hard Paris
errors (or worse, silent corruption).
"""

from __future__ import annotations


class MachineError(Exception):
    """Base class for all simulator errors."""


class GeometryError(MachineError):
    """A VP-set geometry is invalid (empty shape, non-positive extent...)."""


class VPSetMismatchError(MachineError):
    """An operation mixed fields that live on different VP sets."""


class ContextError(MachineError):
    """Context stack misuse (pop on empty stack, wrong-shape mask...)."""


class FieldError(MachineError):
    """Illegal field operation (dtype mismatch, wrong shape...)."""


class RouterError(MachineError):
    """Router address out of range or malformed send/get."""


class ScanError(MachineError):
    """Invalid scan/reduce request (unknown op, bad axis...)."""


class ProcessorFault(MachineError):
    """A physical processing element died (injected hardware fault).

    Permanent: the PE stays on the machine's dead list until a cold boot.
    Raised before the faulting operation mutates any field, so a recovery
    layer that restores a checkpoint and re-lays-out VP sets off the dead
    PE can replay the operation safely.
    """

    def __init__(self, message: str, *, pe: int = -1) -> None:
        super().__init__(message)
        self.pe = pe


class LinkFault(MachineError):
    """A communication link failed in transit (dropped or corrupted
    router message, failed NEWS wire).

    Transient: the hardware is healthy afterwards, so the idempotent
    fix is simply to re-issue the operation.  Raised before any field
    is mutated.
    """

    def __init__(self, message: str, *, op: str = "") -> None:
        super().__init__(message)
        self.op = op
