"""Prefix-sum reference (figures 2 and 3 compute this in log N steps)."""

from __future__ import annotations

import numpy as np


def prefix_sums(a: np.ndarray) -> np.ndarray:
    """Inclusive prefix sums: ``out[i] = a[0] + ... + a[i]``."""
    return np.cumsum(np.asarray(a))
