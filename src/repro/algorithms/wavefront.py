"""The wavefront recurrence of §3.6 (I-structures reference [1]).

``a[0][j] = a[i][0] = 1``;
``a[i][j] = a[i-1][j] + a[i-1][j-1] + a[i][j-1]`` for ``i, j > 0``.
"""

from __future__ import annotations

import numpy as np


def wavefront_matrix(n: int, dtype=np.int64) -> np.ndarray:
    """The n×n wavefront matrix, computed row by row."""
    a = np.ones((n, n), dtype=dtype)
    for i in range(1, n):
        for j in range(1, n):
            a[i, j] = a[i - 1, j] + a[i - 1, j - 1] + a[i, j - 1]
    return a
