"""Reference implementations (pure numpy) used to validate everything.

These are the ground-truth oracles for the test suite and benchmarks:
Floyd–Warshall and min-plus matrix powering for all-pairs shortest paths,
BFS grid distances for the obstacle problem, sorting and prefix-sum
references, and the wavefront recurrence.
"""

from .grid_path import (
    BIG,
    grid_reference_distances,
    jacobi_step,
    obstacle_mask,
    random_obstacle_mask,
)
from .prefix import prefix_sums
from .shortest_path import floyd_warshall, min_plus_power, random_distance_matrix
from .sorting import is_sorted, odd_even_transposition_steps, ranks
from .wavefront import wavefront_matrix

__all__ = [
    "floyd_warshall",
    "min_plus_power",
    "random_distance_matrix",
    "grid_reference_distances",
    "obstacle_mask",
    "random_obstacle_mask",
    "jacobi_step",
    "BIG",
    "prefix_sums",
    "ranks",
    "is_sorted",
    "odd_even_transposition_steps",
    "wavefront_matrix",
]
