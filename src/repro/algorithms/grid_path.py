"""The figure-8 / figure-11 workload: grid shortest path with obstacles.

An R×R grid of cells, each connected to its four NEWS neighbours with
edge weight 1.  Cell (0,0) is the goal G; the obstacle is a wall on the
anti-diagonal ``i + j == R-1`` restricted to ``|i - R/2| <= R/4``
(figure 11's initialisation).  Every cell is initialised to distance 0
and the iterative algorithm repeatedly recomputes each non-goal,
non-wall cell as ``1 + min(neighbour distances)`` until nothing changes
— a self-stabilising relaxation that also copes with obstacles moving
between sweeps (the paper's dynamic variant).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: stands in for "disconnected": larger than any reachable grid distance
BIG = 1_000_000


def obstacle_mask(r: int) -> np.ndarray:
    """The stationary obstacle of figure 11 on an r×r grid."""
    i, j = np.indices((r, r))
    return (i + j == r - 1) & (np.abs(i - r // 2) <= r // 4)


def random_obstacle_mask(
    r: int, *, density: float = 0.1, seed: int = 0, keep_goal_clear: bool = True
) -> np.ndarray:
    """A random obstacle field (for the dynamic-obstacle experiments)."""
    rng = np.random.default_rng(seed)
    mask = rng.random((r, r)) < density
    if keep_goal_clear:
        mask[0, 0] = False
    return mask


def jacobi_step(
    d: np.ndarray, walls: np.ndarray, goal: Tuple[int, int] = (0, 0)
) -> np.ndarray:
    """One synchronous sweep: each free cell becomes 1 + min(neighbours).

    Wall cells hold BIG (disconnected); the goal holds 0.  This is the
    exact update the UC ``*par`` program performs, shared here so the
    sequential model and the tests use identical semantics.
    """
    padded = np.pad(d, 1, constant_values=BIG)
    north = padded[:-2, 1:-1]
    south = padded[2:, 1:-1]
    west = padded[1:-1, :-2]
    east = padded[1:-1, 2:]
    best = np.minimum(np.minimum(north, south), np.minimum(west, east))
    new = np.minimum(best + 1, BIG)
    new[walls] = BIG
    new[goal] = 0
    return new


def relax_to_fixpoint(
    d: np.ndarray,
    walls: np.ndarray,
    goal: Tuple[int, int] = (0, 0),
    *,
    max_sweeps: Optional[int] = None,
) -> Tuple[np.ndarray, int]:
    """Iterate :func:`jacobi_step` until unchanged; returns (d, sweeps)."""
    r = d.shape[0]
    limit = max_sweeps if max_sweeps is not None else 8 * r + 16
    sweeps = 0
    current = d.copy()
    current[walls] = BIG
    current[goal] = 0
    for _ in range(limit):
        new = jacobi_step(current, walls, goal)
        sweeps += 1
        if np.array_equal(new, current):
            return new, sweeps
        current = new
    raise RuntimeError(f"grid relaxation did not converge in {limit} sweeps")


def grid_reference_distances(
    r: int,
    walls: Optional[np.ndarray] = None,
    goal: Tuple[int, int] = (0, 0),
) -> np.ndarray:
    """Ground-truth BFS distances from the goal (walls = BIG)."""
    if walls is None:
        walls = obstacle_mask(r)
    dist = np.full((r, r), BIG, dtype=np.int64)
    if walls[goal]:
        raise ValueError("goal cell is inside the obstacle")
    dist[goal] = 0
    frontier = [goal]
    while frontier:
        nxt = []
        for (ci, cj) in frontier:
            for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                ni, nj = ci + di, cj + dj
                if 0 <= ni < r and 0 <= nj < r and not walls[ni, nj]:
                    if dist[ni, nj] > dist[ci, cj] + 1:
                        dist[ni, nj] = dist[ci, cj] + 1
                        nxt.append((ni, nj))
        frontier = nxt
    return dist
