"""All-pairs shortest path references.

The paper's two data-parallel algorithms (figures 4 and 5) are
Floyd–Warshall with O(N²) parallelism and min-plus matrix powering (log N
squarings) with O(N³) parallelism; both references are implemented here
directly for validation.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np


def random_distance_matrix(
    n: int, *, seed: int = 0, low: int = 1, high: Optional[int] = None
) -> np.ndarray:
    """The paper's workload: ``d[i][i] = 0``, ``d[i][j] = rand() % N + 1``.

    ``high`` defaults to ``n`` (exclusive of ``high + 1``), matching the
    ``1..N`` range of figure 4's initialisation.
    """
    if high is None:
        high = max(low, n)
    rng = np.random.default_rng(seed)
    d = rng.integers(low, high + 1, size=(n, n)).astype(np.int64)
    np.fill_diagonal(d, 0)
    return d


def floyd_warshall(dist: np.ndarray) -> np.ndarray:
    """Classic O(N³)-work Floyd–Warshall (the figure-4 algorithm, run
    serially): relax through each intermediate node in turn."""
    d = np.array(dist, dtype=np.int64, copy=True)
    n = d.shape[0]
    if d.shape != (n, n):
        raise ValueError("distance matrix must be square")
    for k in range(n):
        np.minimum(d, d[:, k : k + 1] + d[k : k + 1, :], out=d)
    return d


def min_plus_product(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """(min, +) matrix product: ``out[i,j] = min_k a[i,k] + b[k,j]``."""
    return (a[:, :, None] + b[None, :, :]).min(axis=1)


def min_plus_power(dist: np.ndarray, *, squarings: Optional[int] = None) -> np.ndarray:
    """Repeated (min,+) squaring — the figure-5 algorithm.

    ``squarings`` defaults to ``ceil(log2 N)``; after that many squarings
    every at-most-N-hop path has been considered.
    """
    d = np.array(dist, dtype=np.int64, copy=True)
    n = d.shape[0]
    if squarings is None:
        squarings = max(1, math.ceil(math.log2(max(2, n))))
    for _ in range(squarings):
        d = min_plus_product(d, d)
    return d
