"""Sorting references: ranksort and odd-even transposition (§3.4, §3.7)."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def ranks(a: np.ndarray) -> np.ndarray:
    """The ranksort rank: ``rank[i] = |{j : a[j] < a[i]}|`` (distinct keys)."""
    a = np.asarray(a)
    return (a[None, :] < a[:, None]).sum(axis=1)


def is_sorted(a: np.ndarray) -> bool:
    a = np.asarray(a)
    return bool(np.all(a[:-1] <= a[1:]))


def odd_even_transposition_steps(a: np.ndarray) -> Tuple[np.ndarray, int]:
    """Deterministic odd-even transposition sort; returns (sorted, phases).

    The UC program of §3.7 performs the same exchanges but picks the
    odd/even phase non-deterministically via ``*oneof``; this reference
    alternates phases and is the oracle the tests compare termination
    results against.
    """
    x = np.array(a, copy=True)
    n = len(x)
    phases = 0
    for sweep in range(n + 1):
        changed = False
        for parity in (0, 1):
            idx = np.arange(parity, n - 1, 2)
            swap = x[idx] > x[idx + 1]
            if np.any(swap):
                changed = True
                hi = x[idx[swap]]
                x[idx[swap]] = x[idx[swap] + 1]
                x[idx[swap] + 1] = hi
            phases += 1
        if not changed:
            break
    return x, phases
