"""UC language front end: lexer, AST, parser and semantic analysis.

The accepted language is the UC of the paper (§3): ANSI-C expressions and
statements (minus ``goto`` and general pointers), plus

* ``index_set`` declarations (``index-set`` is accepted too),
* the reduction expressions ``$+ $* $&& $|| $^ $> $< $,``,
* the constructs ``par`` / ``seq`` / ``solve`` / ``oneof`` with ``st``
  blocks, ``others`` clauses and the iterating ``*`` prefix,
* the ``map`` section with ``permute`` / ``fold`` / ``copy`` mappings.
"""

from .errors import UCError, UCSyntaxError, UCSemanticError
from .lexer import Lexer, tokenize
from .parser import Parser, parse_program, parse_expression, parse_statement
from .semantics import analyze
from . import ast

__all__ = [
    "Lexer",
    "tokenize",
    "Parser",
    "parse_program",
    "parse_expression",
    "parse_statement",
    "analyze",
    "ast",
    "UCError",
    "UCSyntaxError",
    "UCSemanticError",
]
