"""Recursive-descent parser for UC.

Produces the :mod:`repro.lang.ast` tree.  Grammar follows the paper (§3):
C statements and expressions (full C precedence, no ``goto``/pointers)
extended with index-set declarations, reductions, the ``par`` / ``seq`` /
``solve`` / ``oneof`` constructs (with ``st`` arms, ``others`` clauses and
the ``*`` iterate prefix) and ``map`` sections.

Dangling ``st``/``others`` arms bind to the innermost construct, exactly
like C's dangling ``else`` (paper §3.4); braces force a different binding.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast
from .errors import UCSyntaxError
from .lexer import tokenize
from .tokens import Token

#: binary operator precedence, loosest first (C levels)
_BIN_LEVELS: List[List[str]] = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_ASSIGN_OPS = {
    "=": "",
    "+=": "+",
    "-=": "-",
    "*=": "*",
    "/=": "/",
    "%=": "%",
    "&=": "&",
    "|=": "|",
    "^=": "^",
    "<<=": "<<",
    ">>=": ">>",
}

_TYPE_WORDS = ("int", "float")
_UC_KINDS = ("par", "seq", "solve", "oneof")


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, source: str, filename: str = "<uc>") -> None:
        self.toks = tokenize(source, filename)
        self.i = 0

    # -- token plumbing -------------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.toks[self.i]

    def _peek(self, ahead: int = 1) -> Token:
        j = min(self.i + ahead, len(self.toks) - 1)
        return self.toks[j]

    def _next(self) -> Token:
        t = self.toks[self.i]
        if t.kind != "eof":
            self.i += 1
        return t

    def _error(self, msg: str, tok: Optional[Token] = None) -> UCSyntaxError:
        t = tok or self.tok
        return UCSyntaxError(msg, t.line, t.col)

    def _expect_punct(self, text: str) -> Token:
        if not self.tok.is_punct(text):
            raise self._error(f"expected {text!r}, found {self.tok.value!r}")
        return self._next()

    def _expect_keyword(self, word: str) -> Token:
        if not self.tok.is_keyword(word):
            raise self._error(f"expected {word!r}, found {self.tok.value!r}")
        return self._next()

    def _expect_id(self) -> str:
        if self.tok.kind != "id":
            raise self._error(f"expected identifier, found {self.tok.value!r}")
        return str(self._next().value)

    def _accept_punct(self, text: str) -> bool:
        if self.tok.is_punct(text):
            self._next()
            return True
        return False

    # -- program level ----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        prog = ast.Program(line=1, col=1)
        while self.tok.kind != "eof":
            t = self.tok
            if t.is_keyword("index_set"):
                prog.decls.extend(self._index_set_decl())
            elif t.is_keyword("map"):
                prog.maps.append(self._map_section())
            elif t.is_keyword("main"):
                prog.main = self._main_block()
            elif t.is_keyword("void"):
                fd = self._func_def()
                if fd.name == "main":
                    prog.main = fd.body
                else:
                    prog.funcs.append(fd)
            elif t.is_keyword(*_TYPE_WORDS):
                if self._looks_like_funcdef():
                    fd = self._func_def()
                    if fd.name == "main":
                        prog.main = fd.body
                    else:
                        prog.funcs.append(fd)
                else:
                    prog.decls.extend(self._var_decl())
            else:
                raise self._error(
                    f"unexpected token {t.value!r} at top level "
                    "(expected declaration, function, map section or main)"
                )
        return prog

    def _looks_like_funcdef(self) -> bool:
        # 'type ID ('  or  'type main ('
        t1 = self._peek(1)
        t2 = self._peek(2)
        return (t1.kind == "id" or t1.is_keyword("main")) and t2.is_punct("(")

    def _main_block(self) -> ast.Block:
        self._expect_keyword("main")
        if self._accept_punct("("):
            self._expect_punct(")")
        return self._block()

    def _func_def(self) -> ast.FuncDef:
        start = self.tok
        if self.tok.is_keyword("void"):
            ret = "void"
            self._next()
        else:
            ret = str(self._next().value)  # int | float
        if self.tok.is_keyword("main"):
            name = "main"
            self._next()
        else:
            name = self._expect_id()
        self._expect_punct("(")
        params: List[ast.Param] = []
        if not self.tok.is_punct(")"):
            while True:
                if self.tok.is_keyword("void") and self._peek(1).is_punct(")"):
                    self._next()
                    break
                if not self.tok.is_keyword(*_TYPE_WORDS):
                    raise self._error("expected parameter type")
                ptype = str(self._next().value)
                pname = self._expect_id()
                dims = 0
                while self.tok.is_punct("["):
                    self._next()
                    if not self.tok.is_punct("]"):
                        self._cond_expr()  # extent allowed but ignored for params
                    self._expect_punct("]")
                    dims += 1
                params.append(
                    ast.Param(line=start.line, col=start.col, ctype=ptype, name=pname, dims=dims)
                )
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        body = self._block()
        return ast.FuncDef(
            line=start.line, col=start.col, ret_type=ret, name=name, params=params, body=body
        )

    # -- declarations -----------------------------------------------------------

    def _index_set_decl(self) -> List[ast.IndexSetDecl]:
        kw = self._expect_keyword("index_set")
        out: List[ast.IndexSetDecl] = []
        while True:
            set_name = self._expect_id()
            self._expect_punct(":")
            elem_name = self._expect_id()
            self._expect_punct("=")
            spec = self._index_set_spec()
            out.append(
                ast.IndexSetDecl(
                    line=kw.line, col=kw.col, set_name=set_name, elem_name=elem_name, spec=spec
                )
            )
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        return out

    def _index_set_spec(self) -> ast.IndexSetSpec:
        t = self.tok
        if t.kind == "id":
            return ast.IndexSetSpec(line=t.line, col=t.col, kind="alias", alias=self._expect_id())
        self._expect_punct("{")
        first = self._cond_expr()
        if self.tok.is_punct(".."):
            self._next()
            hi = self._cond_expr()
            self._expect_punct("}")
            return ast.IndexSetSpec(line=t.line, col=t.col, kind="range", lo=first, hi=hi)
        items = [first]
        while self._accept_punct(","):
            items.append(self._cond_expr())
        self._expect_punct("}")
        return ast.IndexSetSpec(line=t.line, col=t.col, kind="listing", items=items)

    def _var_decl(self) -> List[ast.VarDecl]:
        t = self.tok
        ctype = str(self._next().value)
        out: List[ast.VarDecl] = []
        while True:
            name = self._expect_id()
            dims: List[ast.Expr] = []
            while self.tok.is_punct("["):
                self._next()
                dims.append(self._cond_expr())
                self._expect_punct("]")
            init: Optional[ast.Expr] = None
            if self._accept_punct("="):
                init = self._assign_expr()
            out.append(
                ast.VarDecl(line=t.line, col=t.col, ctype=ctype, name=name, dims=dims, init=init)
            )
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        return out

    # -- map sections -------------------------------------------------------------

    def _map_section(self) -> ast.MapSection:
        kw = self._expect_keyword("map")
        idxs = self._index_set_list()
        self._expect_punct("{")
        section = ast.MapSection(line=kw.line, col=kw.col, index_sets=idxs)
        while not self.tok.is_punct("}"):
            section.decls.append(self._map_decl())
        self._expect_punct("}")
        return section

    def _map_decl(self) -> ast.MapDecl:
        t = self.tok
        if not t.is_keyword("permute", "fold", "copy"):
            raise self._error("expected 'permute', 'fold' or 'copy' in map section")
        kind = str(self._next().value)
        idxs = self._index_set_list()
        target = self._array_ref()
        # the ':-' mapping operator lexes as ':' followed by '-'
        self._expect_punct(":")
        self._expect_punct("-")
        source = self._array_ref()
        self._expect_punct(";")
        return ast.MapDecl(
            line=t.line, col=t.col, kind=kind, index_sets=idxs, target=target, source=source
        )

    def _array_ref(self) -> ast.Index:
        t = self.tok
        base = self._expect_id()
        subs: List[ast.Expr] = []
        while self.tok.is_punct("["):
            self._next()
            subs.append(self._cond_expr())
            self._expect_punct("]")
        return ast.Index(line=t.line, col=t.col, base=base, subs=subs)

    def _index_set_list(self) -> List[str]:
        self._expect_punct("(")
        names = [self._expect_id()]
        while self._accept_punct(","):
            names.append(self._expect_id())
        self._expect_punct(")")
        return names

    # -- statements -----------------------------------------------------------------

    def parse_statement(self) -> ast.Stmt:
        t = self.tok

        if t.is_punct("*") and self._peek(1).is_keyword(*_UC_KINDS):
            self._next()
            return self._uc_stmt(star=True)
        if t.is_keyword(*_UC_KINDS):
            return self._uc_stmt(star=False)
        if t.is_punct("{"):
            return self._block()
        if t.is_punct(";"):
            self._next()
            return ast.EmptyStmt(line=t.line, col=t.col)
        if t.is_keyword("if"):
            return self._if_stmt()
        if t.is_keyword("while"):
            return self._while_stmt()
        if t.is_keyword("do"):
            return self._do_while()
        if t.is_keyword("for"):
            return self._for_stmt()
        if t.is_keyword("return"):
            self._next()
            value = None if self.tok.is_punct(";") else self._assign_expr()
            self._expect_punct(";")
            return ast.Return(line=t.line, col=t.col, value=value)
        if t.is_keyword("break"):
            self._next()
            self._expect_punct(";")
            return ast.Break(line=t.line, col=t.col)
        if t.is_keyword("continue"):
            self._next()
            self._expect_punct(";")
            return ast.Continue(line=t.line, col=t.col)
        if t.is_keyword("goto"):
            # parse far enough to give semantics a node to reject
            raise self._error("goto is not part of UC (paper §3)")
        if t.is_keyword("index_set"):
            decls = self._index_set_decl()
            if len(decls) == 1:
                return decls[0]
            return ast.DeclGroup(line=t.line, col=t.col, decls=list(decls))
        if t.is_keyword(*_TYPE_WORDS):
            decls = self._var_decl()
            if len(decls) == 1:
                return decls[0]
            return ast.DeclGroup(line=t.line, col=t.col, decls=list(decls))

        expr = self._assign_expr()
        self._expect_punct(";")
        return ast.ExprStmt(line=t.line, col=t.col, expr=expr)

    def _block(self) -> ast.Block:
        t = self._expect_punct("{")
        stmts: List[ast.Stmt] = []
        while not self.tok.is_punct("}"):
            if self.tok.kind == "eof":
                raise self._error("unterminated block (missing '}')", t)
            stmts.append(self.parse_statement())
        self._expect_punct("}")
        return ast.Block(line=t.line, col=t.col, stmts=stmts)

    def _if_stmt(self) -> ast.If:
        t = self._expect_keyword("if")
        self._expect_punct("(")
        cond = self._assign_expr()
        self._expect_punct(")")
        then = self.parse_statement()
        els = None
        if self.tok.is_keyword("else"):
            self._next()
            els = self.parse_statement()
        return ast.If(line=t.line, col=t.col, cond=cond, then=then, els=els)

    def _while_stmt(self) -> ast.While:
        t = self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._assign_expr()
        self._expect_punct(")")
        body = self.parse_statement()
        return ast.While(line=t.line, col=t.col, cond=cond, body=body)

    def _do_while(self) -> ast.DoWhile:
        t = self._expect_keyword("do")
        body = self.parse_statement()
        self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._assign_expr()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.DoWhile(line=t.line, col=t.col, body=body, cond=cond)

    def _for_stmt(self) -> ast.For:
        t = self._expect_keyword("for")
        self._expect_punct("(")
        init = None if self.tok.is_punct(";") else self._assign_expr()
        self._expect_punct(";")
        cond = None if self.tok.is_punct(";") else self._assign_expr()
        self._expect_punct(";")
        step = None if self.tok.is_punct(")") else self._assign_expr()
        self._expect_punct(")")
        body = self.parse_statement()
        return ast.For(line=t.line, col=t.col, init=init, cond=cond, step=step, body=body)

    # -- UC constructs ------------------------------------------------------------------

    def _uc_stmt(self, star: bool) -> ast.UCStmt:
        t = self.tok
        kind = str(self._next().value)
        idxs = self._index_set_list()
        node = ast.UCStmt(line=t.line, col=t.col, kind=kind, star=star, index_sets=idxs)
        if self.tok.is_keyword("st"):
            while self.tok.is_keyword("st"):
                self._next()
                self._expect_punct("(")
                pred = self._assign_expr()
                self._expect_punct(")")
                stmt = self.parse_statement()
                node.blocks.append(ast.ScBlock(line=t.line, col=t.col, pred=pred, stmt=stmt))
            if self.tok.is_keyword("others"):
                self._next()
                node.others = self.parse_statement()
        else:
            body = self.parse_statement()
            node.blocks.append(ast.ScBlock(line=t.line, col=t.col, pred=None, stmt=body))
        return node

    # -- expressions ---------------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self._assign_expr()

    def _assign_expr(self) -> ast.Expr:
        left = self._cond_expr()
        t = self.tok
        if t.kind == "punct" and t.value in _ASSIGN_OPS:
            if not isinstance(left, (ast.Name, ast.Index)):
                raise self._error("assignment target must be a variable or array element", t)
            self._next()
            value = self._assign_expr()  # right-associative
            return ast.Assign(
                line=t.line, col=t.col, target=left, op=_ASSIGN_OPS[str(t.value)], value=value
            )
        return left

    def _cond_expr(self) -> ast.Expr:
        cond = self._binary_expr(0)
        if self.tok.is_punct("?"):
            t = self._next()
            then = self._assign_expr()
            self._expect_punct(":")
            els = self._cond_expr()
            return ast.Ternary(line=t.line, col=t.col, cond=cond, then=then, els=els)
        return cond

    def _binary_expr(self, level: int) -> ast.Expr:
        if level >= len(_BIN_LEVELS):
            return self._unary_expr()
        left = self._binary_expr(level + 1)
        ops = _BIN_LEVELS[level]
        while self.tok.kind == "punct" and self.tok.value in ops:
            t = self._next()
            right = self._binary_expr(level + 1)
            left = ast.Binary(line=t.line, col=t.col, op=str(t.value), left=left, right=right)
        return left

    def _unary_expr(self) -> ast.Expr:
        t = self.tok
        if t.is_punct("-", "+", "!", "~"):
            self._next()
            operand = self._unary_expr()
            if t.value == "+":
                return operand
            return ast.Unary(line=t.line, col=t.col, op=str(t.value), operand=operand)
        if t.is_punct("++", "--"):
            self._next()
            target = self._unary_expr()
            if not isinstance(target, (ast.Name, ast.Index)):
                raise self._error("++/-- target must be a variable or array element", t)
            return ast.IncDec(line=t.line, col=t.col, target=target, op=str(t.value))
        return self._postfix_expr()

    def _postfix_expr(self) -> ast.Expr:
        expr = self._primary_expr()
        while True:
            t = self.tok
            if t.is_punct("[") and isinstance(expr, (ast.Name, ast.Index)):
                self._next()
                sub = self._assign_expr()
                self._expect_punct("]")
                if isinstance(expr, ast.Name):
                    expr = ast.Index(line=expr.line, col=expr.col, base=expr.ident, subs=[sub])
                else:
                    expr.subs.append(sub)
            elif t.is_punct("++", "--") and isinstance(expr, (ast.Name, ast.Index)):
                self._next()
                expr = ast.IncDec(line=t.line, col=t.col, target=expr, op=str(t.value))
            else:
                return expr

    def _primary_expr(self) -> ast.Expr:
        t = self.tok
        if t.kind == "int" or t.kind == "char":
            self._next()
            return ast.IntLit(line=t.line, col=t.col, value=int(t.value))
        if t.kind == "float":
            self._next()
            return ast.FloatLit(line=t.line, col=t.col, value=float(t.value))
        if t.kind == "string":
            self._next()
            return ast.StringLit(line=t.line, col=t.col, value=str(t.value))
        if t.kind == "redop":
            return self._reduction()
        if t.is_keyword("INF"):
            self._next()
            return ast.InfLit(line=t.line, col=t.col)
        if t.kind == "id":
            name = self._expect_id()
            if self.tok.is_punct("("):
                self._next()
                args: List[ast.Expr] = []
                if not self.tok.is_punct(")"):
                    args.append(self._assign_expr())
                    while self._accept_punct(","):
                        args.append(self._assign_expr())
                self._expect_punct(")")
                return ast.Call(line=t.line, col=t.col, func=name, args=args)
            return ast.Name(line=t.line, col=t.col, ident=name)
        if t.is_punct("("):
            self._next()
            expr = self._assign_expr()
            self._expect_punct(")")
            return expr
        raise self._error(f"expected expression, found {t.value!r}")

    def _reduction(self) -> ast.Reduction:
        t = self._next()  # the redop token
        op = str(t.value)
        self._expect_punct("(")
        idxs = [self._expect_id()]
        while self._accept_punct(","):
            idxs.append(self._expect_id())
        node = ast.Reduction(line=t.line, col=t.col, op=op, index_sets=idxs)
        if self._accept_punct(";"):
            if self.tok.is_keyword("st"):
                # paper grammar allows '[;] exp_list'
                self._reduction_arms(node)
            else:
                node.arms.append(ast.ScExpr(line=t.line, col=t.col, pred=None, expr=self._cond_expr()))
        elif self.tok.is_keyword("st"):
            self._reduction_arms(node)
        else:
            raise self._error("reduction needs '; expr' or 'st (pred) expr' arms")
        self._expect_punct(")")
        return node

    def _reduction_arms(self, node: ast.Reduction) -> None:
        while self.tok.is_keyword("st"):
            self._next()
            self._expect_punct("(")
            pred = self._assign_expr()
            self._expect_punct(")")
            expr = self._cond_expr()
            node.arms.append(ast.ScExpr(line=node.line, col=node.col, pred=pred, expr=expr))
        if self.tok.is_keyword("others"):
            self._next()
            node.others = self._cond_expr()


# ---------------------------------------------------------------------------
# convenience entry points
# ---------------------------------------------------------------------------


def parse_program(source: str, filename: str = "<uc>") -> ast.Program:
    """Parse a complete UC program."""
    p = Parser(source, filename)
    return p.parse_program()


def parse_statement(source: str) -> ast.Stmt:
    """Parse a single UC statement (used heavily by tests)."""
    p = Parser(source)
    stmt = p.parse_statement()
    if p.tok.kind != "eof":
        raise p._error("trailing input after statement")
    return stmt


def parse_expression(source: str) -> ast.Expr:
    """Parse a single UC expression."""
    p = Parser(source)
    expr = p.parse_expression()
    if p.tok.kind != "eof":
        raise p._error("trailing input after expression")
    return expr
