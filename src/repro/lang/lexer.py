"""Hand-written lexer for UC source text.

Accepts the paper's spelling ``index-set`` as well as ``index_set`` (the
hyphenated form is folded during scanning), C and C++ comments, decimal /
hex / octal integer literals, float literals, character and string
literals, the ``..`` range punctuation used in index-set definitions, and
the reduction introducers ``$+ $* $&& $|| $^ $> $< $,``.
"""

from __future__ import annotations

from typing import List

from .errors import UCSyntaxError
from .tokens import KEYWORDS, MULTI_PUNCT, REDUCTION_OPS, SINGLE_PUNCT, Token


class Lexer:
    """Scans UC source into a token list (ending with an EOF token)."""

    def __init__(self, source: str, filename: str = "<uc>") -> None:
        self.src = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- character helpers ---------------------------------------------------

    def _peek(self, ahead: int = 0) -> str:
        i = self.pos + ahead
        return self.src[i] if i < len(self.src) else ""

    def _advance(self, n: int = 1) -> str:
        text = self.src[self.pos : self.pos + n]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += n
        return text

    def _error(self, msg: str) -> UCSyntaxError:
        return UCSyntaxError(msg, self.line, self.col)

    # -- scanning ------------------------------------------------------------

    def tokens(self) -> List[Token]:
        out: List[Token] = []
        while True:
            tok = self.next_token()
            out.append(tok)
            if tok.kind == "eof":
                return out

    def _skip_trivia(self) -> None:
        while self.pos < len(self.src):
            ch = self._peek()
            if ch in " \t\r\n\f\v":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.src) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.src) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.src):
                    raise self._error("unterminated comment")
                self._advance(2)
            elif ch == "#":
                # tolerate preprocessor-style lines (#define N 32 handled
                # by the program front end; here we just skip the line)
                while self.pos < len(self.src) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def next_token(self) -> Token:
        self._skip_trivia()
        line, col = self.line, self.col
        if self.pos >= len(self.src):
            return Token("eof", "", line, col)

        ch = self._peek()

        if ch.isalpha() or ch == "_":
            return self._identifier(line, col)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._number(line, col)
        if ch == '"':
            return self._string(line, col)
        if ch == "'":
            return self._char(line, col)
        if ch == "$":
            return self._reduction_op(line, col)

        for p in MULTI_PUNCT:
            if self.src.startswith(p, self.pos):
                self._advance(len(p))
                return Token("punct", p, line, col)
        if ch in SINGLE_PUNCT:
            self._advance()
            return Token("punct", ch, line, col)
        raise self._error(f"unexpected character {ch!r}")

    def _identifier(self, line: int, col: int) -> Token:
        start = self.pos
        while self.pos < len(self.src) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self.src[start : self.pos]
        # fold the paper's hyphenated 'index-set' spelling
        if text == "index" and self._peek() == "-" and self.src.startswith("-set", self.pos):
            self._advance(4)
            text = "index_set"
        if text in KEYWORDS:
            return Token("keyword", text, line, col)
        return Token("id", text, line, col)

    def _number(self, line: int, col: int) -> Token:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            return Token("int", int(self.src[start : self.pos], 16), line, col)

        saw_dot = False
        saw_exp = False
        while self.pos < len(self.src):
            c = self._peek()
            if c.isdigit():
                self._advance()
            elif c == "." and not saw_dot and not saw_exp:
                # '..' belongs to a range, not to this number
                if self._peek(1) == ".":
                    break
                saw_dot = True
                self._advance()
            elif c in "eE" and (self._peek(1).isdigit() or (self._peek(1) in "+-" and self._peek(2).isdigit())):
                saw_exp = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
            else:
                break
        text = self.src[start : self.pos]
        if saw_dot or saw_exp:
            return Token("float", float(text), line, col)
        return Token("int", int(text, 8) if text.startswith("0") and len(text) > 1 else int(text), line, col)

    def _string(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            if self.pos >= len(self.src):
                raise self._error("unterminated string literal")
            c = self._advance()
            if c == '"':
                break
            if c == "\\":
                chars.append(self._escape())
            else:
                chars.append(c)
        return Token("string", "".join(chars), line, col)

    def _char(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        if self.pos >= len(self.src):
            raise self._error("unterminated character literal")
        c = self._advance()
        if c == "\\":
            c = self._escape()
        if self._peek() != "'":
            raise self._error("unterminated character literal")
        self._advance()
        return Token("char", ord(c), line, col)

    def _escape(self) -> str:
        c = self._advance()
        table = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", "'": "'", '"': '"'}
        if c in table:
            return table[c]
        raise self._error(f"unknown escape sequence \\{c}")

    def _reduction_op(self, line: int, col: int) -> Token:
        self._advance()  # the '$'
        for spelling in ("&&", "||"):
            if self.src.startswith(spelling, self.pos):
                self._advance(2)
                return Token("redop", REDUCTION_OPS[spelling], line, col)
        c = self._peek()
        if c in REDUCTION_OPS:
            self._advance()
            return Token("redop", REDUCTION_OPS[c], line, col)
        raise self._error(f"unknown reduction operator $${c!r}")


def tokenize(source: str, filename: str = "<uc>") -> List[Token]:
    """Scan ``source`` into a token list ending with EOF."""
    return Lexer(source, filename).tokens()
