"""Symbol tables and index-set scoping for UC.

Index sets obey the paper's shadowing rule (§3.4): reusing an index set in
a nested construct rebinds its element identifier, hiding the outer
binding exactly like redeclaration of a C variable in an inner block.
The same :class:`ScopeStack` serves semantic analysis (names only) and the
interpreter (names bound to runtime values).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .errors import UCSemanticError


@dataclass(frozen=True)
class IndexSetValue:
    """A concrete, constant, ordered set of integers (paper §3.1)."""

    name: str
    elem_name: str
    values: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[int]:
        return iter(self.values)

    def __contains__(self, x: int) -> bool:
        return x in self.values

    def with_element(self, elem_name: str) -> "IndexSetValue":
        """The same set bound to a different element identifier (alias)."""
        return IndexSetValue(self.name, elem_name, self.values)


@dataclass
class Symbol:
    """One named entity: scalar, array, index set, element or function."""

    name: str
    kind: str  # 'scalar' | 'array' | 'index_set' | 'element' | 'function' | 'const'
    ctype: str = "int"  # for scalar/array/function return
    dims: Tuple[int, ...] = ()
    value: Any = None  # semantic: const value / IndexSetValue; interp: runtime value


class Scope:
    """One lexical scope level."""

    def __init__(self, parent: Optional["Scope"] = None) -> None:
        self.parent = parent
        self.symbols: Dict[str, Symbol] = {}

    def declare(self, sym: Symbol, *, allow_shadow: bool = True) -> Symbol:
        if sym.name in self.symbols:
            raise UCSemanticError(f"duplicate declaration of {sym.name!r} in this scope")
        if not allow_shadow and self.lookup(sym.name) is not None:
            raise UCSemanticError(f"{sym.name!r} shadows an outer declaration")
        self.symbols[sym.name] = sym
        return sym

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None

    def lookup_local(self, name: str) -> Optional[Symbol]:
        return self.symbols.get(name)


class ScopeStack:
    """Convenience wrapper managing a stack of :class:`Scope` levels."""

    def __init__(self) -> None:
        self.current = Scope()
        self.globals = self.current

    def push(self) -> Scope:
        self.current = Scope(self.current)
        return self.current

    def pop(self) -> None:
        if self.current.parent is None:
            raise RuntimeError("cannot pop the global scope")
        self.current = self.current.parent

    def declare(self, sym: Symbol) -> Symbol:
        return self.current.declare(sym)

    def lookup(self, name: str) -> Optional[Symbol]:
        return self.current.lookup(name)

    def require(self, name: str, *kinds: str) -> Symbol:
        sym = self.lookup(name)
        if sym is None:
            raise UCSemanticError(f"undeclared identifier {name!r}")
        if kinds and sym.kind not in kinds:
            raise UCSemanticError(
                f"{name!r} is a {sym.kind}, expected {' or '.join(kinds)}"
            )
        return sym

    def scoped(self) -> "_ScopedCtx":
        return _ScopedCtx(self)


class _ScopedCtx:
    def __init__(self, stack: ScopeStack) -> None:
        self._stack = stack

    def __enter__(self) -> Scope:
        return self._stack.push()

    def __exit__(self, *exc: object) -> None:
        self._stack.pop()
