"""AST node definitions for UC.

All nodes are plain dataclasses carrying their source position.  The tree
mirrors the paper's grammar (§3): C expressions/statements plus index-set
declarations, reductions, the four UC constructs and the map section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass
class Node:
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class InfLit(Expr):
    """The predefined constant INF (paper §3.2)."""


@dataclass
class Name(Expr):
    ident: str = ""


@dataclass
class Unary(Expr):
    op: str = ""  # '-', '+', '!', '~'
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Binary(Expr):
    op: str = ""  # C binary operator spelling: '+', '<=', '&&', '%', ...
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class Ternary(Expr):
    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    els: Expr = None  # type: ignore[assignment]


@dataclass
class Call(Expr):
    func: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    """``base[sub0][sub1]...`` with all subscripts collected."""

    base: str = ""
    subs: List[Expr] = field(default_factory=list)


@dataclass
class ScExpr(Node):
    """One ``st (pred) exp`` arm of a reduction (pred None = no predicate)."""

    pred: Optional[Expr] = None
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class Reduction(Expr):
    """``$op(idxs ; exp)`` / ``$op(idxs st (p) e ... others e)`` (§3.2)."""

    op: str = ""  # canonical: add, mul, logand, logor, logxor, max, min, arbitrary
    index_sets: List[str] = field(default_factory=list)
    arms: List[ScExpr] = field(default_factory=list)
    others: Optional[Expr] = None


@dataclass
class Assign(Expr):
    """``target op= value``; ``op`` is '' for plain assignment."""

    target: Expr = None  # type: ignore[assignment]  (Name or Index)
    op: str = ""  # '', '+', '-', '*', '/', '%', '&', '|', '^', '<<', '>>'
    value: Expr = None  # type: ignore[assignment]


@dataclass
class IncDec(Expr):
    """``target++`` / ``target--`` (pre/post makes no difference as a stmt)."""

    target: Expr = None  # type: ignore[assignment]
    op: str = "++"


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class EmptyStmt(Stmt):
    pass


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    els: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class DoWhile(Stmt):
    body: Stmt = None  # type: ignore[assignment]
    cond: Expr = None  # type: ignore[assignment]


@dataclass
class For(Stmt):
    init: Optional[Expr] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------


@dataclass
class DeclGroup(Stmt):
    """Several declarators from one declaration (``int a, b;``).

    Unlike :class:`Block`, a DeclGroup introduces no scope — its
    declarations land in the surrounding scope, as C requires.
    """

    decls: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    """``int a[N][N], s;`` — one declarator (the parser splits lists)."""

    ctype: str = "int"  # 'int' | 'float'
    name: str = ""
    dims: List[Expr] = field(default_factory=list)  # empty = scalar
    init: Optional[Expr] = None


@dataclass
class IndexSetSpec(Node):
    """RHS of an index-set definition."""

    kind: str = "range"  # 'range' | 'listing' | 'alias'
    lo: Optional[Expr] = None
    hi: Optional[Expr] = None
    items: List[Expr] = field(default_factory=list)
    alias: str = ""


@dataclass
class IndexSetDecl(Stmt):
    """``index_set I:i = {0..N-1};`` — one set (lists are split)."""

    set_name: str = ""
    elem_name: str = ""
    spec: IndexSetSpec = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# UC constructs
# ---------------------------------------------------------------------------


@dataclass
class ScBlock(Node):
    """One ``st (pred) stmt`` arm (pred None = the unconditional body)."""

    pred: Optional[Expr] = None
    stmt: Stmt = None  # type: ignore[assignment]


@dataclass
class UCStmt(Stmt):
    """``[*] par|seq|solve|oneof (idxs) st-blocks [others stmt]`` (§3.3)."""

    kind: str = "par"  # 'par' | 'seq' | 'solve' | 'oneof'
    star: bool = False
    index_sets: List[str] = field(default_factory=list)
    blocks: List[ScBlock] = field(default_factory=list)
    others: Optional[Stmt] = None


# ---------------------------------------------------------------------------
# map section (§4)
# ---------------------------------------------------------------------------


@dataclass
class MapDecl(Node):
    """``permute (I) b[i+1] :- a[i];`` and the fold / copy forms."""

    kind: str = "permute"  # 'permute' | 'fold' | 'copy'
    index_sets: List[str] = field(default_factory=list)
    target: Index = None  # type: ignore[assignment]  # the array being remapped
    source: Optional[Index] = None  # relative-to reference (None for fold/copy forms without one)
    extent: Optional[Expr] = None  # copy: replication count


@dataclass
class MapSection(Node):
    index_sets: List[str] = field(default_factory=list)
    decls: List[MapDecl] = field(default_factory=list)


# ---------------------------------------------------------------------------
# top level
# ---------------------------------------------------------------------------


@dataclass
class Param(Node):
    ctype: str = "int"
    name: str = ""
    dims: int = 0  # number of array dimensions (passed as slice reference)


@dataclass
class FuncDef(Node):
    ret_type: str = "void"  # 'void' | 'int' | 'float'
    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: Block = None  # type: ignore[assignment]


@dataclass
class Program(Node):
    decls: List[Stmt] = field(default_factory=list)  # VarDecl | IndexSetDecl
    maps: List[MapSection] = field(default_factory=list)
    funcs: List[FuncDef] = field(default_factory=list)
    main: Optional[Block] = None


# ---------------------------------------------------------------------------
# traversal helper
# ---------------------------------------------------------------------------


def children(node: Node) -> List[Node]:
    """All direct child nodes of ``node`` (for generic walks)."""
    out: List[Node] = []
    for f in vars(node).values():
        if isinstance(f, Node):
            out.append(f)
        elif isinstance(f, list):
            out.extend(x for x in f if isinstance(x, Node))
    return out


def walk(node: Node):
    """Pre-order generator over ``node`` and all descendants."""
    yield node
    for child in children(node):
        yield from walk(child)
