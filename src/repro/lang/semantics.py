"""Static semantic analysis for UC programs.

Checks performed (paper references in parentheses):

* index-set bounds/listings are compile-time integer constants (§3.1);
* aliases name previously declared index sets (§3.1);
* array dimensions are positive constants;
* every UC construct names declared index sets, and the element
  identifiers in one cartesian product are distinct (§3.3);
* ``goto`` never appears (§3) — the parser already rejects it, the
  analyzer re-checks programmatically constructed trees;
* reduction operators are from the table of eight (§3.2);
* a ``solve`` body is a *proper set of assignments*: each constituent
  statement is a single assignment and no variable is the target of more
  than one statement (§3.6);
* map sections reference declared arrays and index sets, with subscript
  counts matching array ranks (§4);
* every identifier use resolves to a declaration, an enclosing index
  element, a function parameter or a builtin.

The result is a :class:`ProgramInfo` consumed by the interpreter, the
mapping subsystem and the compiler passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from . import ast
from .errors import UCSemanticError
from .scope import IndexSetValue, Scope, ScopeStack, Symbol
from .tokens import REDUCTION_OPS

#: functions the runtime provides (paper programs use power2, rand, swap, ABS)
BUILTIN_FUNCTIONS = {
    "power2": 1,
    "rand": 0,
    "srand": 1,
    "abs": 1,
    "ABS": 1,
    "fabs": 1,
    "sqrt": 1,
    "min": 2,
    "max": 2,
    "swap": 2,
    "printf": -1,  # variadic
}

_VALID_RED_OPS = frozenset(REDUCTION_OPS.values())


@dataclass
class ProgramInfo:
    """Everything later phases need to know about a checked program."""

    program: ast.Program
    index_sets: Dict[str, IndexSetValue] = field(default_factory=dict)
    #: element identifier -> index set name (outermost declaration)
    elements: Dict[str, str] = field(default_factory=dict)
    arrays: Dict[str, Tuple[str, Tuple[int, ...]]] = field(default_factory=dict)
    scalars: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, ast.FuncDef] = field(default_factory=dict)
    constants: Dict[str, int] = field(default_factory=dict)


class _ConstEvaluator:
    """Evaluates compile-time constant integer expressions."""

    def __init__(self, constants: Dict[str, int]) -> None:
        self.constants = constants

    def eval(self, node: ast.Expr) -> int:
        if isinstance(node, ast.IntLit):
            return node.value
        if isinstance(node, ast.FloatLit):
            raise UCSemanticError(
                "float literal in constant integer context", node.line, node.col
            )
        if isinstance(node, ast.InfLit):
            raise UCSemanticError("INF is not an integer constant", node.line, node.col)
        if isinstance(node, ast.Name):
            if node.ident in self.constants:
                return self.constants[node.ident]
            raise UCSemanticError(
                f"{node.ident!r} is not a compile-time constant", node.line, node.col
            )
        if isinstance(node, ast.Unary):
            v = self.eval(node.operand)
            if node.op == "-":
                return -v
            if node.op == "!":
                return int(not v)
            if node.op == "~":
                return ~v
            raise UCSemanticError(f"bad constant unary {node.op!r}", node.line, node.col)
        if isinstance(node, ast.Binary):
            a, b = self.eval(node.left), self.eval(node.right)
            return _const_binop(node.op, a, b, node)
        if isinstance(node, ast.Ternary):
            return self.eval(node.then) if self.eval(node.cond) else self.eval(node.els)
        raise UCSemanticError(
            f"expression is not a compile-time constant ({type(node).__name__})",
            node.line,
            node.col,
        )


def _const_binop(op: str, a: int, b: int, node: ast.Node) -> int:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            raise UCSemanticError("division by zero in constant", node.line, node.col)
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    if op == "%":
        if b == 0:
            raise UCSemanticError("mod by zero in constant", node.line, node.col)
        return a - _const_binop("/", a, b, node) * b
    if op == "<<":
        return a << b
    if op == ">>":
        return a >> b
    if op == "&":
        return a & b
    if op == "|":
        return a | b
    if op == "^":
        return a ^ b
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    if op == "<":
        return int(a < b)
    if op == "<=":
        return int(a <= b)
    if op == ">":
        return int(a > b)
    if op == ">=":
        return int(a >= b)
    if op == "&&":
        return int(bool(a) and bool(b))
    if op == "||":
        return int(bool(a) or bool(b))
    raise UCSemanticError(f"bad constant binary {op!r}", node.line, node.col)


class Analyzer:
    """Walks a parsed program performing all static checks."""

    def __init__(self, defines: Optional[Dict[str, int]] = None) -> None:
        self.defines = dict(defines or {})
        self.scopes = ScopeStack()
        self.info: Optional[ProgramInfo] = None

    # -- entry point ------------------------------------------------------------

    def analyze(self, program: ast.Program) -> ProgramInfo:
        info = ProgramInfo(program=program, constants=dict(self.defines))
        self.info = info
        consts = _ConstEvaluator(info.constants)

        for name, value in self.defines.items():
            self.scopes.declare(Symbol(name, "const", value=int(value)))

        for decl in program.decls:
            if isinstance(decl, ast.IndexSetDecl):
                self._declare_index_set(decl, consts, info)
            elif isinstance(decl, ast.VarDecl):
                self._declare_var(decl, consts, info)
            else:  # pragma: no cover - parser never produces this
                raise UCSemanticError("bad top-level declaration", decl.line, decl.col)

        for func in program.funcs:
            if func.name in info.functions:
                raise UCSemanticError(
                    f"duplicate function {func.name!r}", func.line, func.col
                )
            # a user definition overrides the like-named builtin (the paper's
            # programs define power2 themselves)
            info.functions[func.name] = func
            self.scopes.globals.declare(
                Symbol(func.name, "function", ctype=func.ret_type, value=func)
            )

        for section in program.maps:
            self._check_map_section(section, info)

        for func in program.funcs:
            self._check_function(func)

        if program.main is not None:
            with self.scopes.scoped():
                self._check_stmt(program.main, in_solve=False)
        return info

    # -- declarations --------------------------------------------------------------

    def _declare_index_set(
        self, decl: ast.IndexSetDecl, consts: _ConstEvaluator, info: ProgramInfo
    ) -> None:
        spec = decl.spec
        if spec.kind == "range":
            lo = consts.eval(spec.lo)
            hi = consts.eval(spec.hi)
            if hi < lo:
                raise UCSemanticError(
                    f"empty index-set range {{{lo}..{hi}}} for {decl.set_name!r}",
                    decl.line,
                    decl.col,
                )
            values = tuple(range(lo, hi + 1))
        elif spec.kind == "listing":
            values = tuple(consts.eval(item) for item in spec.items)
            if not values:
                raise UCSemanticError(
                    f"index set {decl.set_name!r} has no elements", decl.line, decl.col
                )
        else:  # alias
            base = self.scopes.lookup(spec.alias)
            if base is None or base.kind != "index_set":
                raise UCSemanticError(
                    f"index set {decl.set_name!r} aliases unknown set {spec.alias!r}",
                    decl.line,
                    decl.col,
                )
            values = base.value.values

        isv = IndexSetValue(decl.set_name, decl.elem_name, values)
        self.scopes.declare(Symbol(decl.set_name, "index_set", value=isv))
        # element identifiers are only *bound* inside constructs (§3.3); at
        # declaration time we merely reject collisions with real variables
        existing = self.scopes.lookup(decl.elem_name)
        if existing is not None and existing.kind not in ("element", "index_set"):
            raise UCSemanticError(
                f"element name {decl.elem_name!r} collides with a {existing.kind}",
                decl.line,
                decl.col,
            )
        info.index_sets[decl.set_name] = isv
        info.elements.setdefault(decl.elem_name, decl.set_name)

    def _declare_var(
        self, decl: ast.VarDecl, consts: _ConstEvaluator, info: ProgramInfo
    ) -> None:
        dims: List[int] = []
        for d in decl.dims:
            extent = consts.eval(d)
            if extent <= 0:
                raise UCSemanticError(
                    f"array {decl.name!r} has non-positive extent {extent}",
                    decl.line,
                    decl.col,
                )
            dims.append(extent)
        if dims:
            if decl.init is not None:
                raise UCSemanticError(
                    f"array {decl.name!r} cannot have an initializer", decl.line, decl.col
                )
            self.scopes.declare(
                Symbol(decl.name, "array", ctype=decl.ctype, dims=tuple(dims))
            )
            info.arrays[decl.name] = (decl.ctype, tuple(dims))
        else:
            self.scopes.declare(Symbol(decl.name, "scalar", ctype=decl.ctype))
            info.scalars[decl.name] = decl.ctype
            if decl.init is not None:
                # a top-level scalar with constant initializer doubles as a
                # compile-time constant (stands in for #define)
                try:
                    info.constants[decl.name] = consts.eval(decl.init)
                    self.scopes.globals.symbols[decl.name].value = info.constants[decl.name]
                except UCSemanticError:
                    self._check_expr(decl.init)

    # -- map sections ----------------------------------------------------------------

    def _check_map_section(self, section: ast.MapSection, info: ProgramInfo) -> None:
        for name in section.index_sets:
            self.scopes.require(name, "index_set")
        for decl in section.decls:
            for name in decl.index_sets:
                self.scopes.require(name, "index_set")
            self._check_map_ref(decl.target, info, decl)
            if decl.source is not None:
                self._check_map_ref(decl.source, info, decl)
            if decl.kind == "copy":
                if decl.source is None or len(decl.target.subs) != len(decl.source.subs) + 1:
                    raise UCSemanticError(
                        "copy mapping target must have exactly one more subscript "
                        "than its source (the replication axis)",
                        decl.line,
                        decl.col,
                    )
            elif decl.kind == "fold":
                if decl.source is None or decl.target.base != decl.source.base:
                    raise UCSemanticError(
                        "fold mapping must fold an array onto itself",
                        decl.line,
                        decl.col,
                    )

    def _check_map_ref(self, ref: ast.Index, info: ProgramInfo, decl: ast.MapDecl) -> None:
        if ref.base not in info.arrays:
            raise UCSemanticError(
                f"map section references unknown array {ref.base!r}", ref.line, ref.col
            )
        rank = len(info.arrays[ref.base][1])
        expected = rank + 1 if (decl.kind == "copy" and ref is decl.target) else rank
        if len(ref.subs) != expected:
            raise UCSemanticError(
                f"map reference {ref.base!r} has {len(ref.subs)} subscripts, "
                f"array rank is {rank}",
                ref.line,
                ref.col,
            )
        with self.scopes.scoped():
            for s in decl.index_sets:
                isv = self.scopes.require(s, "index_set").value
                self.scopes.declare(Symbol(isv.elem_name, "element", value=s))
            for sub in ref.subs:
                self._check_expr(sub)

    # -- functions --------------------------------------------------------------------

    def _check_function(self, func: ast.FuncDef) -> None:
        with self.scopes.scoped():
            for p in func.params:
                kind = "array" if p.dims else "scalar"
                self.scopes.declare(Symbol(p.name, kind, ctype=p.ctype, dims=(0,) * p.dims))
            self._check_stmt(func.body, in_solve=False)

    # -- statements ----------------------------------------------------------------------

    def _check_stmt(self, stmt: ast.Stmt, *, in_solve: bool) -> None:
        if isinstance(stmt, ast.Block):
            with self.scopes.scoped():
                for s in stmt.stmts:
                    self._check_stmt(s, in_solve=in_solve)
        elif isinstance(stmt, ast.DeclGroup):
            for s in stmt.decls:
                self._check_stmt(s, in_solve=in_solve)
        elif isinstance(stmt, ast.VarDecl):
            consts = _ConstEvaluator(self.info.constants if self.info else {})
            dims = []
            for d in stmt.dims:
                dims.append(consts.eval(d))
            kind = "array" if dims else "scalar"
            self.scopes.declare(Symbol(stmt.name, kind, ctype=stmt.ctype, dims=tuple(dims)))
            if stmt.init is not None:
                self._check_expr(stmt.init)
        elif isinstance(stmt, ast.IndexSetDecl):
            consts = _ConstEvaluator(self.info.constants if self.info else {})
            self._declare_index_set(stmt, consts, self.info)  # type: ignore[arg-type]
        elif isinstance(stmt, ast.UCStmt):
            self._check_uc_stmt(stmt, in_solve=in_solve)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond)
            self._check_stmt(stmt.then, in_solve=in_solve)
            if stmt.els is not None:
                self._check_stmt(stmt.els, in_solve=in_solve)
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.cond)
            self._check_stmt(stmt.body, in_solve=in_solve)
        elif isinstance(stmt, ast.DoWhile):
            self._check_stmt(stmt.body, in_solve=in_solve)
            self._check_expr(stmt.cond)
        elif isinstance(stmt, ast.For):
            for e in (stmt.init, stmt.cond, stmt.step):
                if e is not None:
                    self._check_expr(e)
            self._check_stmt(stmt.body, in_solve=in_solve)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_expr(stmt.value)
        elif isinstance(stmt, (ast.EmptyStmt, ast.Break, ast.Continue)):
            pass
        else:
            raise UCSemanticError(
                f"unsupported statement {type(stmt).__name__}", stmt.line, stmt.col
            )

    def _check_uc_stmt(self, stmt: ast.UCStmt, *, in_solve: bool) -> None:
        if stmt.kind not in ("par", "seq", "solve", "oneof"):
            raise UCSemanticError(f"unknown UC construct {stmt.kind!r}", stmt.line, stmt.col)
        elems: Set[str] = set()
        with self.scopes.scoped():
            for name in stmt.index_sets:
                sym = self.scopes.require(name, "index_set")
                isv: IndexSetValue = sym.value
                if isv.elem_name in elems:
                    raise UCSemanticError(
                        f"element identifier {isv.elem_name!r} appears twice in "
                        f"one cartesian product",
                        stmt.line,
                        stmt.col,
                    )
                elems.add(isv.elem_name)
                # inner use hides any outer binding (paper §3.4)
                self.scopes.current.symbols[isv.elem_name] = Symbol(
                    isv.elem_name, "element", value=name
                )
            inner_solve = in_solve or stmt.kind == "solve"
            if stmt.kind == "solve":
                self._check_solve_body(stmt)
            for block in stmt.blocks:
                if block.pred is not None:
                    self._check_expr(block.pred)
                self._check_stmt(block.stmt, in_solve=inner_solve)
            if stmt.others is not None:
                if not stmt.blocks or all(b.pred is None for b in stmt.blocks):
                    raise UCSemanticError(
                        "'others' requires at least one 'st' arm", stmt.line, stmt.col
                    )
                self._check_stmt(stmt.others, in_solve=inner_solve)

    def _check_solve_body(self, stmt: ast.UCStmt) -> None:
        """A non-starred solve body must be a proper set of assignments (§3.6)."""
        if stmt.star:
            return  # *solve statements need not be single-assignment (§3.6)
        targets: Set[str] = set()
        for assign in _solve_assignments(stmt):
            tgt = assign.target
            base = tgt.ident if isinstance(tgt, ast.Name) else tgt.base  # type: ignore[union-attr]
            if base in targets:
                raise UCSemanticError(
                    f"solve body assigns {base!r} in more than one statement "
                    "(not a proper set of equations)",
                    assign.line,
                    assign.col,
                )
            targets.add(base)

    # -- expressions ----------------------------------------------------------------------

    def _check_expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.StringLit, ast.InfLit)):
            return
        if isinstance(expr, ast.Name):
            self.scopes.require(expr.ident)
            return
        if isinstance(expr, ast.Index):
            sym = self.scopes.require(expr.base, "array")
            if sym.dims and sym.dims != (0,) * len(sym.dims):
                if len(expr.subs) > len(sym.dims):
                    raise UCSemanticError(
                        f"array {expr.base!r} indexed with {len(expr.subs)} subscripts, "
                        f"rank is {len(sym.dims)}",
                        expr.line,
                        expr.col,
                    )
            for s in expr.subs:
                self._check_expr(s)
            return
        if isinstance(expr, ast.Unary):
            self._check_expr(expr.operand)
            return
        if isinstance(expr, ast.Binary):
            self._check_expr(expr.left)
            self._check_expr(expr.right)
            return
        if isinstance(expr, ast.Ternary):
            self._check_expr(expr.cond)
            self._check_expr(expr.then)
            self._check_expr(expr.els)
            return
        if isinstance(expr, ast.Assign):
            if not isinstance(expr.target, (ast.Name, ast.Index)):
                raise UCSemanticError("bad assignment target", expr.line, expr.col)
            if isinstance(expr.target, ast.Name):
                sym = self.scopes.require(expr.target.ident)
                if sym.kind not in ("scalar",):
                    raise UCSemanticError(
                        f"cannot assign to {expr.target.ident!r}: it is a "
                        f"{sym.kind}, not a variable",
                        expr.line,
                        expr.col,
                    )
            self._check_expr(expr.target)
            self._check_expr(expr.value)
            return
        if isinstance(expr, ast.IncDec):
            self._check_expr(expr.target)
            return
        if isinstance(expr, ast.Call):
            if expr.func in BUILTIN_FUNCTIONS:
                arity = BUILTIN_FUNCTIONS[expr.func]
                if arity >= 0 and len(expr.args) != arity:
                    raise UCSemanticError(
                        f"builtin {expr.func!r} takes {arity} argument(s), "
                        f"got {len(expr.args)}",
                        expr.line,
                        expr.col,
                    )
            else:
                sym = self.scopes.require(expr.func, "function")
                func: ast.FuncDef = sym.value
                if len(expr.args) != len(func.params):
                    raise UCSemanticError(
                        f"function {expr.func!r} takes {len(func.params)} argument(s), "
                        f"got {len(expr.args)}",
                        expr.line,
                        expr.col,
                    )
            for a in expr.args:
                self._check_expr(a)
            return
        if isinstance(expr, ast.Reduction):
            if expr.op not in _VALID_RED_OPS:
                raise UCSemanticError(
                    f"unknown reduction operator {expr.op!r}", expr.line, expr.col
                )
            elems: Set[str] = set()
            with self.scopes.scoped():
                for name in expr.index_sets:
                    sym = self.scopes.require(name, "index_set")
                    isv: IndexSetValue = sym.value
                    if isv.elem_name in elems:
                        raise UCSemanticError(
                            f"element identifier {isv.elem_name!r} appears twice in "
                            "one reduction product",
                            expr.line,
                            expr.col,
                        )
                    elems.add(isv.elem_name)
                    self.scopes.current.symbols[isv.elem_name] = Symbol(
                        isv.elem_name, "element", value=name
                    )
                for arm in expr.arms:
                    if arm.pred is not None:
                        self._check_expr(arm.pred)
                    self._check_expr(arm.expr)
                if expr.others is not None:
                    self._check_expr(expr.others)
            return
        raise UCSemanticError(
            f"unsupported expression {type(expr).__name__}", expr.line, expr.col
        )


def _solve_assignments(stmt: ast.UCStmt):
    """Yield the assignment expressions forming a solve body."""
    for block in stmt.blocks:
        yield from _stmt_assignments(block.stmt)
    if stmt.others is not None:
        yield from _stmt_assignments(stmt.others)


def _stmt_assignments(stmt: ast.Stmt):
    if isinstance(stmt, ast.ExprStmt) and isinstance(stmt.expr, ast.Assign):
        yield stmt.expr
    elif isinstance(stmt, ast.Block):
        for s in stmt.stmts:
            yield from _stmt_assignments(s)
    else:
        raise UCSemanticError(
            "solve body must consist solely of assignment statements",
            stmt.line,
            stmt.col,
        )


def analyze(program: ast.Program, defines: Optional[Dict[str, int]] = None) -> ProgramInfo:
    """Run all static checks over ``program``; returns the symbol info."""
    return Analyzer(defines).analyze(program)
