"""Token definitions for the UC lexer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

#: reserved words of UC (C subset + UC extensions)
KEYWORDS = frozenset(
    {
        "index_set",
        "int",
        "float",
        "void",
        "par",
        "seq",
        "solve",
        "oneof",
        "st",
        "others",
        "map",
        "permute",
        "fold",
        "copy",
        "if",
        "else",
        "while",
        "for",
        "do",
        "return",
        "break",
        "continue",
        "main",
        "INF",
        # recognised so semantic analysis can reject it per the paper
        "goto",
    }
)

#: reduction operator spellings after '$' -> canonical op name
REDUCTION_OPS = {
    "+": "add",
    "*": "mul",
    "&&": "logand",
    "||": "logor",
    "^": "logxor",
    ">": "max",
    "<": "min",
    ",": "arbitrary",
}

#: multi-character punctuation, longest first (order matters for the lexer)
MULTI_PUNCT = [
    "<<=",
    ">>=",
    "...",
    "..",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "<<",
    ">>",
    "->",
]

SINGLE_PUNCT = "+-*/%<>=!&|^~?:;,.(){}[]"


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of: ``"id"``, ``"keyword"``, ``"int"``, ``"float"``,
    ``"string"``, ``"char"``, ``"redop"``, ``"punct"``, ``"eof"``.
    ``value`` holds the identifier text, keyword, literal value, canonical
    reduction op name, or punctuation string.
    """

    kind: str
    value: Union[str, int, float]
    line: int
    col: int

    def is_punct(self, *texts: str) -> bool:
        return self.kind == "punct" and self.value in texts

    def is_keyword(self, *words: str) -> bool:
        return self.kind == "keyword" and self.value in words

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}:{self.value!r}@{self.line}:{self.col}"
