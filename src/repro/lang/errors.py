"""Front-end error types, all carrying source positions."""

from __future__ import annotations

from typing import Optional


class UCError(Exception):
    """Base class for all UC language errors."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.message = message
        self.line = line
        self.col = col
        if line:
            super().__init__(f"{message} (line {line}, column {col})")
        else:
            super().__init__(message)


class UCSyntaxError(UCError):
    """Lexical or grammatical error in UC source."""


class UCSemanticError(UCError):
    """Program is grammatical but violates a UC static rule.

    Examples: ``goto`` used, non-constant index-set bound, unknown index
    set, a ``solve`` body that is not a proper set of assignments, a map
    declaration naming an unknown array.
    """


class UCRuntimeError(UCError):
    """Error raised while executing a UC program.

    The single-assignment violation of ``par`` (paper §3.4) is the most
    prominent member, via the :class:`UCMultipleAssignmentError` subclass.
    """


class UCMultipleAssignmentError(UCRuntimeError):
    """A ``par`` statement assigned conflicting values to one variable."""


class UCSanitizerError(UCRuntimeError):
    """The runtime sanitizer observed behaviour contradicting a static
    verdict of the analyzer (``repro lint``): a reference serviced by a
    tier the static classifier excluded, or a duplicate write at a site
    proven injective.  Either is a bug in the analyzer or the engines —
    it is raised as a hard failure, never downgraded."""
